package chaos

import (
	"fmt"
	"net/netip"
	"time"

	"sessiondir/internal/mcast"
	"sessiondir/internal/sap"
	"sessiondir/internal/session"
	"sessiondir/internal/stats"
	"sessiondir/internal/transport"
)

// AdversaryKind selects a hostile behaviour. Adversaries speak raw SAP on
// the bus — they are not directories, so nothing constrains them to the
// protocol's good manners. Each kind models one attack the admission
// layer (or the clash protocol itself) must absorb.
type AdversaryKind int

const (
	// Flooder announces an endless stream of brand-new, internally
	// consistent sessions, optionally rotating source origins — the
	// cache-exhaustion attack the session budget and per-origin quota
	// exist for.
	Flooder AdversaryKind = iota
	// Poisoner tries to mutate cached honest sessions in place: it
	// replays a heard announcement with the victim's origin but a
	// different address and no version bump, and also sends copies whose
	// SAP header origin disagrees with the SDP payload.
	Poisoner
	// ClashForger creates its own sessions deliberately at addresses it
	// has heard honest agents announce, forcing the clash protocol to
	// arbitrate against a hostile claimant.
	ClashForger
	// Replayer records honest wire packets verbatim and retransmits them
	// later — stale versions must be rejected, current versions must be
	// harmless refreshes, and neither may re-trigger clash correction.
	Replayer
	// DeleteForger sends SAP deletions naming heard honest sessions from
	// its own origin — the deletion-spoofing attack.
	DeleteForger
)

// String implements fmt.Stringer.
func (k AdversaryKind) String() string {
	switch k {
	case Flooder:
		return "flooder"
	case Poisoner:
		return "poisoner"
	case ClashForger:
		return "clash-forger"
	case Replayer:
		return "replayer"
	case DeleteForger:
		return "delete-forger"
	default:
		return "adversary-?"
	}
}

// AdversaryConfig parameterises one hostile agent.
type AdversaryConfig struct {
	Kind AdversaryKind
	// Origin is the adversary's base source address
	// (zero = 192.0.2.200+index, outside the honest fleet's 10.0.0.0/8).
	Origin netip.Addr
	// Rate is packets sent per tick while active (0 = 8).
	Rate int
	// Origins rotates a Flooder across this many source addresses,
	// modelling a spoofing flooder that sidesteps per-origin defences
	// (0 = 1: all packets from Origin).
	Origins int
	// Start and Stop bound the active window in elapsed virtual time
	// (Stop 0 = active until the run ends).
	Start, Stop time.Duration
	// TTL is the announced scope of forged sessions (0 = 127).
	TTL mcast.TTL
}

// maxRecorded bounds how much honest traffic an adversary remembers;
// adversaries must not be a memory leak in long schedules either.
const maxRecorded = 512

// Adversary is one hostile agent on the bus. It records the honest
// traffic it overhears (adversaries eavesdrop; the bus is multicast) and
// spends its per-tick packet budget according to its kind. All of its
// random choices come from an RNG split off the harness root, so hostile
// schedules replay bit-identically like everything else.
type Adversary struct {
	Index int

	cfg   AdversaryConfig
	ep    *transport.BusEndpoint
	rng   *stats.RNG
	space mcast.AddrSpace

	sent   uint64
	nextID uint64

	// Overheard honest traffic: raw wire bytes for the replayer, decoded
	// announcements for the poisoner/clash-forger/delete-forger.
	wire  [][]byte
	descs []*session.Description
}

// Sent reports how many packets the adversary has transmitted.
func (a *Adversary) Sent() uint64 { return a.sent }

// Heard reports how many honest announcements the adversary recorded.
func (a *Adversary) Heard() int { return len(a.descs) }

// AddAdversary attaches a hostile agent to the fabric. Adversaries join
// the same Bus as the fleet, overhear everything, and are stepped each
// tick after scheduled events and before transports and directories, in
// the order they were added.
func (h *Harness) AddAdversary(cfg AdversaryConfig) *Adversary {
	idx := len(h.advs)
	if !cfg.Origin.IsValid() {
		cfg.Origin = netip.AddrFrom4([4]byte{192, 0, 2, byte(200 + idx)})
	}
	if cfg.Rate <= 0 {
		cfg.Rate = 8
	}
	if cfg.Origins <= 0 {
		cfg.Origins = 1
	}
	if cfg.TTL == 0 {
		cfg.TTL = 127
	}
	a := &Adversary{
		Index: idx,
		cfg:   cfg,
		ep:    h.bus.Endpoint(),
		rng:   h.root.Split(),
		space: h.space,
	}
	a.ep.Subscribe(a.record)
	h.advs = append(h.advs, a)
	return a
}

// record stores overheard announcements, bounded. It keeps whatever is
// internally consistent — an adversary cannot tell honest traffic from
// another adversary's well-formed forgeries, and doesn't care.
func (a *Adversary) record(m transport.Message) {
	if len(a.wire) >= maxRecorded {
		return
	}
	var p sap.Packet
	if err := p.DecodeMaybeCompressed(m.Data); err != nil || p.Type != sap.Announce {
		return
	}
	desc, err := session.ParseSDP(p.Payload)
	if err != nil || desc.Origin != p.Origin {
		return
	}
	// The bus hands every recipient its own copy and this handler never
	// Releases, so retaining m.Data directly is safe — no second
	// defensive copy needed (buflease verifies handlers that do Release
	// never retain).
	a.wire = append(a.wire, m.Data)
	a.descs = append(a.descs, desc)
}

// active reports whether the adversary sends during this tick.
func (a *Adversary) active(elapsed time.Duration) bool {
	if elapsed <= a.cfg.Start {
		return false
	}
	return a.cfg.Stop == 0 || elapsed <= a.cfg.Stop
}

// step spends one tick's packet budget.
func (a *Adversary) step(elapsed time.Duration) {
	if !a.active(elapsed) {
		return
	}
	for i := 0; i < a.cfg.Rate; i++ {
		switch a.cfg.Kind {
		case Flooder:
			a.flood()
		case Poisoner:
			a.poison()
		case ClashForger:
			a.forgeClash()
		case Replayer:
			a.replay()
		case DeleteForger:
			a.forgeDelete()
		}
	}
}

// origin returns the source address for the next packet, rotating across
// the configured spoof range.
func (a *Adversary) origin() netip.Addr {
	if a.cfg.Origins == 1 {
		return a.cfg.Origin
	}
	base := a.cfg.Origin.As4()
	k := a.rng.IntN(a.cfg.Origins)
	base[2] += byte(k >> 8)
	base[3] += byte(k)
	return netip.AddrFrom4(base)
}

// send marshals and transmits; marshal failures on forged content are
// silently dropped (an adversary has no error budget to report to).
func (a *Adversary) send(typ sap.MessageType, origin netip.Addr, desc *session.Description) {
	payload, err := desc.MarshalSDP()
	if err != nil {
		return
	}
	pkt := sap.Packet{
		Type:      typ,
		MsgIDHash: sap.MsgIDHashOf(payload),
		Origin:    origin,
		Payload:   payload,
	}
	wireBytes, err := pkt.Marshal(nil)
	if err != nil {
		return
	}
	if a.ep.Send(nil, wireBytes, desc.TTL) == nil {
		a.sent++
	}
}

// flood announces a fresh, internally consistent session at a random
// address. Every packet survives validation; only budgets stop it.
func (a *Adversary) flood() {
	org := a.origin()
	a.nextID++
	a.send(sap.Announce, org, &session.Description{
		ID:      a.nextID,
		Version: 1,
		Origin:  org,
		Name:    fmt.Sprintf("flood-%d-%d", a.Index, a.nextID),
		Group:   a.space.Group(mcast.Addr(a.rng.IntN(int(a.space.Size)))),
		TTL:     a.cfg.TTL,
		Media:   []session.Media{{Type: "audio", Port: 5004, Proto: "RTP/AVP", Format: "0"}},
	})
}

// poison attacks a recorded session's cached state: even packets carry a
// mismatched SAP header origin, odd packets spoof the victim's origin on
// a same-version announcement moved to a different address (a forged
// clash report).
func (a *Adversary) poison() {
	if len(a.descs) == 0 {
		return
	}
	victim := a.descs[a.rng.IntN(len(a.descs))]
	if a.sent%2 == 0 {
		a.send(sap.Announce, a.cfg.Origin, victim)
		return
	}
	moved := *victim
	idx, _ := a.space.Index(victim.Group)
	moved.Group = a.space.Group(mcast.Addr((uint32(idx) + 1 + uint32(a.rng.IntN(int(a.space.Size)-1))) % a.space.Size))
	a.send(sap.Announce, victim.Origin, &moved)
}

// forgeClash announces the adversary's own session at an address a
// recorded honest session already holds, making the clash protocol
// arbitrate between an honest claimant and a hostile one.
func (a *Adversary) forgeClash() {
	if len(a.descs) == 0 {
		return
	}
	victim := a.descs[a.rng.IntN(len(a.descs))]
	a.nextID++
	a.send(sap.Announce, a.cfg.Origin, &session.Description{
		ID:      a.nextID,
		Version: 1,
		Origin:  a.cfg.Origin,
		Name:    fmt.Sprintf("squat-%d-%d", a.Index, a.nextID),
		Group:   victim.Group,
		TTL:     a.cfg.TTL,
		Media:   []session.Media{{Type: "audio", Port: 5004, Proto: "RTP/AVP", Format: "0"}},
	})
}

// replay retransmits a recorded wire packet byte-for-byte.
func (a *Adversary) replay() {
	if len(a.wire) == 0 {
		return
	}
	pkt := a.wire[a.rng.IntN(len(a.wire))]
	if a.ep.Send(nil, pkt, a.cfg.TTL) == nil {
		a.sent++
	}
}

// forgeDelete sends a deletion naming a recorded honest session. The SAP
// header carries the adversary's own origin: without authentication that
// is the only lie the receiver can actually catch, and it must.
func (a *Adversary) forgeDelete() {
	if len(a.descs) == 0 {
		return
	}
	victim := a.descs[a.rng.IntN(len(a.descs))]
	a.send(sap.Delete, a.cfg.Origin, victim)
}
