package chaos

import (
	"testing"
	"time"
)

// honestKeys returns every key the honest fleet's own sessions carry.
func honestKeys(h *Harness) []string {
	var keys []string
	for _, a := range h.agents {
		for _, d := range a.Dir.OwnSessions() {
			keys = append(keys, d.Key())
		}
	}
	return keys
}

// assertHonestSurvive fails unless every live agent still knows every
// honest session (its own included).
func assertHonestSurvive(t *testing.T, h *Harness) {
	t.Helper()
	for _, a := range h.agents {
		if !a.Alive() {
			continue
		}
		for _, key := range honestKeys(h) {
			if !h.Knows(a.Index, key) {
				t.Errorf("agent %d lost honest session %s:\n%s",
					a.Index, key, h.Fingerprint(a.Index))
			}
		}
	}
}

// newHostileFleet builds a bounded fleet sized so that budget pressure is
// real: 4 agents × 2 sessions = 6 foreign honest sessions per cache,
// against a 16-entry budget. StaleAfter exceeds the 300 s steady
// re-announcement interval so honest state is never flood-evictable, and
// CacheTimeout is short enough that an attacker's sessions expire within
// a schedule once it goes quiet.
func newHostileFleet(t *testing.T, seed uint64) *Harness {
	t.Helper()
	h, err := New(Config{
		Agents:           4,
		Seed:             seed,
		Start:            chaosStart(),
		SpaceSize:        64,
		SessionsPerAgent: 2,
		CacheTimeout:     600 * time.Second,
		MaxSessions:      16,
		MaxPerOrigin:     4,
		OriginRate:       5,
		OriginBurst:      40,
		StaleAfter:       400 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.CreateSessions(); err != nil {
		t.Fatal(err)
	}
	return h
}

// TestAdversaryFlooderBoundedMemory: an origin-rotating flooder (so the
// per-origin quota alone cannot stop it) must not grow any cache past
// MaxSessions or displace honest sessions, and once it stops, its
// admitted sessions expire and the fleet converges back to exactly the
// honest session set.
func TestAdversaryFlooderBoundedMemory(t *testing.T) {
	h := newHostileFleet(t, 7001)
	adv := h.AddAdversary(AdversaryConfig{
		Kind:    Flooder,
		Rate:    20,
		Origins: 64,
		Start:   30 * time.Second,
		Stop:    330 * time.Second,
	})

	h.Run(nil, 1200*time.Second)

	if adv.Sent() == 0 {
		t.Fatal("flooder sent nothing; the schedule tested nothing")
	}
	for _, a := range h.agents {
		if n := a.Dir.CacheSize(); n > 16 {
			t.Errorf("agent %d cache grew to %d entries, budget 16", a.Index, n)
		}
		if m := a.Dir.Metrics(); m.Shed == 0 && m.QuotaDrops == 0 {
			t.Errorf("agent %d admitted the whole flood: %+v", a.Index, m)
		}
	}
	assertHonestSurvive(t, h)
	fp, ok, dissent := h.Converged()
	if !ok {
		t.Fatalf("fleet did not re-converge after flood; agents %v disagree with:\n%s", dissent, fp)
	}
	// Flood state has expired: the converged view is the honest set alone.
	if n := h.SessionCount(0); n != len(honestKeys(h)) {
		t.Fatalf("agent 0 knows %d sessions after flood expiry, want %d:\n%s",
			n, len(honestKeys(h)), h.Fingerprint(0))
	}
}

// TestAdversaryPoisonerAndDeleteForger: forged in-place mutations and
// spoofed deletions are counted and dropped — honest sessions keep their
// addresses, nothing is deleted, and no clash correction is triggered.
func TestAdversaryPoisonerAndDeleteForger(t *testing.T) {
	h := newHostileFleet(t, 7002)
	h.AddAdversary(AdversaryConfig{
		Kind:  Poisoner,
		Rate:  10,
		Start: 60 * time.Second,
		Stop:  360 * time.Second,
	})
	h.AddAdversary(AdversaryConfig{
		Kind:  DeleteForger,
		Rate:  10,
		Start: 60 * time.Second,
		Stop:  360 * time.Second,
	})

	// Let the fleet converge cleanly first so the adversaries have
	// something recorded to attack.
	h.Run(nil, 50*time.Second)
	before, ok, _ := h.Converged()
	if !ok {
		t.Fatal("fleet failed to converge before the attack")
	}
	changesBefore := h.TotalAddressChanges()

	h.Run(nil, 550*time.Second)

	var forgedReports, forgedDeletes uint64
	for _, a := range h.agents {
		m := a.Dir.Metrics()
		forgedReports += m.ForgedReports
		forgedDeletes += m.ForgedDeletes
	}
	if forgedReports == 0 {
		t.Error("no forged reports counted; the poisoner never bit")
	}
	if forgedDeletes == 0 {
		t.Error("no forged deletes counted; the delete-forger never bit")
	}
	if got := h.TotalAddressChanges(); got != changesBefore {
		t.Errorf("forged packets caused %d address changes", got-changesBefore)
	}
	assertHonestSurvive(t, h)
	after, ok, dissent := h.Converged()
	if !ok {
		t.Fatalf("fleet diverged under forgery; agents %v disagree", dissent)
	}
	if after != before {
		t.Fatalf("forgery mutated the converged view:\nbefore:\n%s\nafter:\n%s", before, after)
	}
}

// TestAdversaryReplayerHarmless: byte-identical replays of recorded
// honest traffic must at worst refresh state — never resurrect old
// versions or re-trigger address changes.
func TestAdversaryReplayerHarmless(t *testing.T) {
	h := newHostileFleet(t, 7003)
	adv := h.AddAdversary(AdversaryConfig{
		Kind:  Replayer,
		Rate:  10,
		Start: 60 * time.Second,
		Stop:  500 * time.Second,
	})

	h.Run(nil, 50*time.Second)
	before, ok, _ := h.Converged()
	if !ok {
		t.Fatal("fleet failed to converge before the attack")
	}
	changesBefore := h.TotalAddressChanges()

	h.Run(nil, 750*time.Second)

	if adv.Sent() == 0 {
		t.Fatal("replayer sent nothing; it recorded no traffic")
	}
	if got := h.TotalAddressChanges(); got != changesBefore {
		t.Errorf("replays caused %d address changes", got-changesBefore)
	}
	assertHonestSurvive(t, h)
	after, ok, dissent := h.Converged()
	if !ok {
		t.Fatalf("fleet diverged under replay; agents %v disagree", dissent)
	}
	if after != before {
		t.Fatalf("replay mutated the converged view:\nbefore:\n%s\nafter:\n%s", before, after)
	}
}

// TestAdversaryClashForgerConvergence: a squatter deliberately announcing
// at honest addresses forces the clash protocol to arbitrate against a
// hostile claimant. Honest sessions may legitimately move, but every one
// survives, the squat state expires once the adversary stops, and the
// fleet converges clash-free.
func TestAdversaryClashForgerConvergence(t *testing.T) {
	h := newHostileFleet(t, 7004)
	adv := h.AddAdversary(AdversaryConfig{
		Kind:  ClashForger,
		Rate:  2,
		Start: 60 * time.Second,
		Stop:  240 * time.Second,
	})

	h.Run(nil, 1200*time.Second)

	if adv.Sent() == 0 {
		t.Fatal("clash forger sent nothing; it recorded no traffic")
	}
	assertHonestSurvive(t, h)
	fp, ok, dissent := h.Converged()
	if !ok {
		t.Fatalf("fleet did not converge after squatting; agents %v disagree with:\n%s", dissent, fp)
	}
	if clashes := h.AddressClashes(); len(clashes) != 0 {
		t.Fatalf("honest agents still clash after the squatter left: %v", clashes)
	}
	if n := h.SessionCount(0); n != len(honestKeys(h)) {
		t.Fatalf("agent 0 knows %d sessions after squat expiry, want %d:\n%s",
			n, len(honestKeys(h)), h.Fingerprint(0))
	}
}

// runGauntlet is the all-kinds hostile schedule used for the determinism
// check: every adversary kind at once, under transport faults, against a
// bounded fleet.
func runGauntlet(t *testing.T, seed uint64) *Harness {
	t.Helper()
	h := newHostileFleet(t, seed)
	for _, kind := range []AdversaryKind{Flooder, Poisoner, ClashForger, Replayer, DeleteForger} {
		h.AddAdversary(AdversaryConfig{
			Kind:    kind,
			Rate:    6,
			Origins: 16,
			Start:   45 * time.Second,
			Stop:    400 * time.Second,
		})
	}
	schedule := []Event{
		{At: 90 * time.Second, Do: func(h *Harness) { h.SetFaults(heavyFaults()) }},
		{At: 300 * time.Second, Do: func(h *Harness) { h.ClearFaults() }},
	}
	h.Run(schedule, 1200*time.Second)
	return h
}

// TestAdversaryDeterministicReplay: a hostile run is still a pure
// function of its seed — every fingerprint, directory metric, fault
// counter, and adversary packet count replays field-identically.
func TestAdversaryDeterministicReplay(t *testing.T) {
	a := runGauntlet(t, 4242)
	b := runGauntlet(t, 4242)
	for i := range a.agents {
		if fa, fb := a.Fingerprint(i), b.Fingerprint(i); fa != fb {
			t.Fatalf("agent %d fingerprints differ between identical seeds:\n%s\nvs:\n%s", i, fa, fb)
		}
		if ma, mb := a.agents[i].Dir.Metrics(), b.agents[i].Dir.Metrics(); ma != mb {
			t.Fatalf("agent %d metrics differ:\n%+v\nvs:\n%+v", i, ma, mb)
		}
		if sa, sb := a.agents[i].Fault.Stats(), b.agents[i].Fault.Stats(); sa != sb {
			t.Fatalf("agent %d fault stats differ:\n%+v\nvs:\n%+v", i, sa, sb)
		}
	}
	for i := range a.advs {
		if sa, sb := a.advs[i].Sent(), b.advs[i].Sent(); sa != sb {
			t.Fatalf("adversary %d (%s) sent %d vs %d packets between identical seeds",
				i, a.advs[i].cfg.Kind, sa, sb)
		}
	}
	// And the gauntlet must still have ended converged and survivable.
	assertHonestSurvive(t, a)
	if _, ok, dissent := a.Converged(); !ok {
		t.Fatalf("gauntlet did not converge; agents %v disagree", dissent)
	}
}
