package chaos

import (
	"fmt"
	"testing"
	"time"

	"sessiondir/internal/session"
	"sessiondir/internal/transport"
)

func chaosStart() time.Time {
	return time.Date(1998, 9, 1, 12, 0, 0, 0, time.UTC)
}

// heavyFaults is the flagship fault cocktail: 20% independent loss per
// receiver, frequent duplication, occasional single-bit corruption, and
// delays long enough (relative to the 1 s tick) to reorder packets across
// several ticks.
func heavyFaults() transport.FaultProfile {
	return transport.FaultProfile{
		Loss:      0.20,
		Duplicate: 0.15,
		Corrupt:   0.01,
		Delay:     transport.UniformDelay(0, 1200*time.Millisecond),
	}
}

// runFlagship runs the headline schedule: sessions announced cleanly, then
// heavy faults, a 2-minute partition into halves, heal, faults off, and a
// long quiet tail for soft state to converge. Returns the harness after
// the run.
func runFlagship(t *testing.T, seed uint64) *Harness {
	return runFlagshipTraced(t, seed, 0)
}

func runFlagshipTraced(t *testing.T, seed uint64, traceCap int) *Harness {
	t.Helper()
	h, err := New(Config{
		Agents:           8,
		Seed:             seed,
		Start:            chaosStart(),
		SpaceSize:        64,
		SessionsPerAgent: 2,
		TraceCap:         traceCap,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.CreateSessions(); err != nil {
		t.Fatal(err)
	}
	schedule := []Event{
		{At: 10 * time.Second, Do: func(h *Harness) { h.SetFaults(heavyFaults()) }},
		{At: 60 * time.Second, Do: func(h *Harness) { h.Partition([]int{0, 1, 2, 3}, []int{4, 5, 6, 7}) }},
		{At: 180 * time.Second, Do: func(h *Harness) { h.Heal() }},
		{At: 240 * time.Second, Do: func(h *Harness) { h.ClearFaults() }},
	}
	h.Run(schedule, 600*time.Second)
	return h
}

func TestChaosConvergenceUnderLossDupPartition(t *testing.T) {
	h := runFlagship(t, 1998)

	fp, ok, dissent := h.Converged()
	if !ok {
		for _, i := range dissent {
			t.Logf("agent %d fingerprint:\n%s", i, h.Fingerprint(i))
		}
		t.Fatalf("caches did not converge; agents %v disagree with:\n%s", dissent, fp)
	}
	if clashes := h.AddressClashes(); len(clashes) != 0 {
		t.Fatalf("address clashes survived the run: %v", clashes)
	}
	// Every one of the 16 sessions must have survived 20% loss, the
	// partition, and corruption-induced discards.
	if n := h.SessionCount(0); n != 16 {
		t.Fatalf("agent 0 knows %d sessions, want 16:\n%s", n, h.Fingerprint(0))
	}
}

func TestChaosDeterministicReplay(t *testing.T) {
	a := runFlagship(t, 42)
	b := runFlagship(t, 42)
	for i := 0; i < 8; i++ {
		fa, fb := a.Fingerprint(i), b.Fingerprint(i)
		if fa != fb {
			t.Fatalf("agent %d diverged between identical runs:\n--- run 1:\n%s\n--- run 2:\n%s", i, fa, fb)
		}
		ma, mb := a.Agent(i).Dir.Metrics(), b.Agent(i).Dir.Metrics()
		if ma != mb {
			t.Fatalf("agent %d metrics diverged between identical runs:\nrun 1: %+v\nrun 2: %+v", i, ma, mb)
		}
		sa, sb := a.Agent(i).Fault.Stats(), b.Agent(i).Fault.Stats()
		if sa != sb {
			t.Fatalf("agent %d fault schedule diverged between identical runs:\nrun 1: %+v\nrun 2: %+v", i, sa, sb)
		}
	}
}

// TestChaosTraceReplayBitIdentical is the tracing determinism contract:
// attaching an event trace must not perturb a seeded run (recording draws
// no randomness and takes no time on the virtual clock), and the traces
// of two identical traced runs must match event for event.
func TestChaosTraceReplayBitIdentical(t *testing.T) {
	plain := runFlagship(t, 42)
	traced := runFlagshipTraced(t, 42, 8192)
	traced2 := runFlagshipTraced(t, 42, 8192)
	for i := 0; i < 8; i++ {
		fp, ft := plain.Fingerprint(i), traced.Fingerprint(i)
		if fp != ft {
			t.Fatalf("agent %d: tracing changed the run:\n--- untraced:\n%s\n--- traced:\n%s", i, fp, ft)
		}
		if mp, mt := plain.Agent(i).Dir.Metrics(), traced.Agent(i).Dir.Metrics(); mp != mt {
			t.Fatalf("agent %d: tracing changed the metrics:\nuntraced: %+v\ntraced:   %+v", i, mp, mt)
		}
		ea, eb := traced.Agent(i).Trace.Events(), traced2.Agent(i).Trace.Events()
		if len(ea) == 0 {
			t.Fatalf("agent %d recorded no trace events", i)
		}
		if len(ea) != len(eb) {
			t.Fatalf("agent %d trace lengths diverged: %d vs %d", i, len(ea), len(eb))
		}
		for j := range ea {
			if ea[j] != eb[j] {
				t.Fatalf("agent %d trace event %d diverged:\nrun 1: %+v\nrun 2: %+v", i, j, ea[j], eb[j])
			}
		}
	}
	if plain.Agent(0).Trace != nil {
		t.Fatal("untraced run grew a trace")
	}
}

// TestChaosClashCorrectionTerminates creates sessions *inside* a
// partition, so both halves allocate from the same small space without
// hearing each other — the paper's partition-heal clash scenario — while
// duplicated and delayed clash reports try to re-trigger every reaction.
// Correction must converge to distinct addresses and then go quiet: the
// address-change counter stops moving (no livelock).
func TestChaosClashCorrectionTerminates(t *testing.T) {
	h, err := New(Config{
		Agents:    4,
		Seed:      7,
		Start:     chaosStart(),
		SpaceSize: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(i int, name string) {
		if _, err := h.Agent(i).Dir.CreateSession(&session.Description{
			Name: name,
			TTL:  127,
			Media: []session.Media{
				{Type: "audio", Port: 5004, Proto: "RTP/AVP", Format: "0"},
			},
		}); err != nil {
			t.Fatal(err)
		}
	}
	schedule := []Event{
		{At: 5 * time.Second, Do: func(h *Harness) { h.Partition([]int{0, 1}, []int{2, 3}) }},
		// Allocate blind on both sides of the split: 12 sessions into 16
		// addresses guarantees overlap between the halves.
		{At: 10 * time.Second, Do: func(h *Harness) {
			for i := 0; i < 4; i++ {
				for j := 0; j < 3; j++ {
					mk(i, fmt.Sprintf("split-%d-%d", i, j))
				}
			}
		}},
		// Duplicated, delayed clash reports stress the termination
		// argument: a stale or repeated report must not re-trigger moves.
		{At: 20 * time.Second, Do: func(h *Harness) {
			h.SetFaults(transport.FaultProfile{
				Duplicate: 0.5,
				Delay:     transport.UniformDelay(0, 2*time.Second),
			})
		}},
		{At: 60 * time.Second, Do: func(h *Harness) { h.Heal() }},
		{At: 240 * time.Second, Do: func(h *Harness) { h.ClearFaults() }},
	}
	h.Run(schedule, 600*time.Second)

	if clashes := h.AddressClashes(); len(clashes) != 0 {
		t.Fatalf("clashes unresolved after heal: %v", clashes)
	}
	if h.TotalAddressChanges() == 0 {
		t.Fatal("no address changes at all: the schedule failed to force a clash")
	}
	// Quiet-window check: another 300 virtual seconds with no faults must
	// produce zero further moves, or correction is live-locked.
	before := h.TotalAddressChanges()
	h.Run(nil, 300*time.Second)
	if after := h.TotalAddressChanges(); after != before {
		t.Fatalf("address changes still occurring after convergence: %d -> %d", before, after)
	}
	if _, ok, dissent := h.Converged(); !ok {
		t.Fatalf("caches did not converge after clash correction; dissent: %v", dissent)
	}
}

// TestChaosSilencedAgentExpires kills one agent mid-run and checks the
// soft-state eviction promise: its sessions disappear from every
// survivor's cache once the cache timeout passes without a re-announcement.
func TestChaosSilencedAgentExpires(t *testing.T) {
	h, err := New(Config{
		Agents:           4,
		Seed:             11,
		Start:            chaosStart(),
		SpaceSize:        64,
		SessionsPerAgent: 1,
		CacheTimeout:     300 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.CreateSessions(); err != nil {
		t.Fatal(err)
	}
	victim := h.Agent(3).Dir.OwnSessions()
	if len(victim) != 1 {
		t.Fatalf("agent 3 owns %d sessions", len(victim))
	}
	victimKey := victim[0].Key()

	schedule := []Event{
		{At: 10 * time.Second, Do: func(h *Harness) {
			h.SetFaults(transport.FaultProfile{Loss: 0.2})
		}},
		{At: 60 * time.Second, Do: func(h *Harness) { h.Kill(3) }},
		{At: 120 * time.Second, Do: func(h *Harness) { h.ClearFaults() }},
	}
	h.Run(schedule, 900*time.Second)

	for i := 0; i < 3; i++ {
		if h.Knows(i, victimKey) {
			t.Fatalf("agent %d still caches the silenced agent's session %s", i, victimKey)
		}
		if n := h.SessionCount(i); n != 3 {
			t.Fatalf("agent %d knows %d sessions, want 3 (survivors only):\n%s", i, n, h.Fingerprint(i))
		}
	}
	if _, ok, dissent := h.Converged(); !ok {
		t.Fatalf("survivors did not converge; dissent: %v", dissent)
	}
}
