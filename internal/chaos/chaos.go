// Package chaos is the fault-injection convergence harness: it runs a
// fleet of session-directory agents on an in-process Bus, each behind its
// own FaultTransport, through a scripted schedule of loss, duplication,
// corruption, delay, partition, and crash events — all on a ManualClock
// with every random decision drawn from one seeded stats.RNG tree. A run
// is therefore a pure function of (Config, schedule): a failing seed
// replays bit-identically, which is what makes soft-state convergence
// claims testable at all.
//
// The invariants it checks are the paper's §2.2–§3 soft-state promises:
// once faults stop, every agent's cache converges to the same session set
// (announce–listen repairs loss), clash correction terminates rather than
// live-locking (no two live agents keep swapping addresses forever), and
// state whose announcer has gone silent is eventually evicted.
package chaos

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"time"

	"sessiondir"
	"sessiondir/internal/clash"
	"sessiondir/internal/mcast"
	"sessiondir/internal/obs"
	"sessiondir/internal/session"
	"sessiondir/internal/stats"
	"sessiondir/internal/transport"
)

// Config assembles a Harness.
type Config struct {
	// Agents is the fleet size. Required (>= 2).
	Agents int
	// Seed drives every random decision in the run (fault draws, allocator
	// choices, suppression delays). Required non-zero so a failure report
	// can always name the seed it replays from.
	Seed uint64
	// Start is the virtual-time origin. Required (the harness never reads
	// the wall clock).
	Start time.Time
	// Tick is the virtual step size (0 = 1 s, the directory's own cadence).
	Tick time.Duration
	// SpaceSize is the synthetic address-space size (0 = 256). Small spaces
	// force clashes, which is the point of several schedules.
	SpaceSize uint32
	// SessionsPerAgent is how many sessions each agent creates up front.
	SessionsPerAgent int
	// TTL is the scope of every created session (0 = 127).
	TTL mcast.TTL
	// CacheTimeout expires unheard sessions (0 = the directory default of
	// one hour; set it near the schedule length to test eviction).
	CacheTimeout time.Duration

	// Admission budgets, passed through to every agent's directory (zero
	// values disable each mechanism, matching sessiondir.Config). Hostile
	// schedules set these to assert the fleet survives within them.
	MaxSessions  int
	MaxPerOrigin int
	OriginRate   float64
	OriginBurst  float64
	StaleAfter   time.Duration

	// TraceCap, when > 0, attaches an obs event ring of this capacity to
	// every agent's directory (reachable as Agent.Trace). Recording draws
	// no randomness, so a traced run must replay bit-identically to an
	// untraced one — the replay tests assert exactly that.
	TraceCap int
}

// Agent is one directory instance and its fault-injecting transport.
type Agent struct {
	Index int
	Dir   *sessiondir.Directory
	Fault *transport.FaultTransport
	// Trace is the agent's event ring (nil unless Config.TraceCap > 0).
	Trace *obs.Trace

	ep    *transport.BusEndpoint
	alive bool
}

// Alive reports whether the agent is still running (i.e. not Killed).
func (a *Agent) Alive() bool { return a.alive }

// Event is one scripted schedule entry: Do runs once the run's elapsed
// virtual time reaches At. Events fire in At order (ties in slice order)
// before that tick's transport and directory steps.
type Event struct {
	At time.Duration
	Do func(h *Harness)
}

// Harness owns the fleet, the shared manual clock, and the Bus fabric.
// It is not safe for concurrent use; a chaos run is single-threaded on
// purpose (concurrency would re-introduce scheduling nondeterminism).
type Harness struct {
	cfg    Config
	clk    *transport.ManualClock
	bus    *transport.Bus
	agents []*Agent
	// root is retained after construction so adversaries added later draw
	// from the same seeded RNG tree as the fleet.
	root  *stats.RNG
	space mcast.AddrSpace
	advs  []*Adversary
}

// New builds the fleet: one Bus, one ManualClock, and per agent a
// FaultTransport-wrapped endpoint plus a Directory with an injected clock
// and a seed split off the harness root RNG.
func New(cfg Config) (*Harness, error) {
	if cfg.Agents < 2 {
		return nil, fmt.Errorf("chaos: need at least 2 agents, got %d", cfg.Agents)
	}
	if cfg.Seed == 0 {
		return nil, fmt.Errorf("chaos: Seed is required (a run must be replayable by seed)")
	}
	if cfg.Start.IsZero() {
		return nil, fmt.Errorf("chaos: Start is required (the harness runs on virtual time only)")
	}
	if cfg.Tick == 0 {
		cfg.Tick = time.Second
	}
	if cfg.SpaceSize == 0 {
		cfg.SpaceSize = 256
	}
	if cfg.TTL == 0 {
		cfg.TTL = 127
	}

	h := &Harness{
		cfg:   cfg,
		clk:   transport.NewManualClock(cfg.Start),
		bus:   transport.NewBus(),
		root:  stats.NewRNG(cfg.Seed),
		space: mcast.SyntheticSpace(cfg.SpaceSize),
	}
	root := h.root
	for i := 0; i < cfg.Agents; i++ {
		ep := h.bus.Endpoint()
		ft, err := transport.NewFault(ep, transport.FaultConfig{
			RNG:   root.Split(),
			Clock: h.clk,
		})
		if err != nil {
			return nil, err
		}
		dirSeed := root.Uint64()
		if dirSeed == 0 {
			dirSeed = 1 // 0 means "pick a default" to the Directory
		}
		var trace *obs.Trace
		if cfg.TraceCap > 0 {
			trace = obs.NewTrace(cfg.TraceCap)
		}
		dir, err := sessiondir.New(sessiondir.Config{
			Origin:       netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i&0xff) + 1}),
			Transport:    ft,
			Space:        mcast.SyntheticSpace(cfg.SpaceSize),
			CacheTimeout: cfg.CacheTimeout,
			Delay:        clash.NewExponentialDelay(0, 3200, 200),
			Clock:        h.clk.Now,
			Seed:         dirSeed,
			MaxSessions:  cfg.MaxSessions,
			MaxPerOrigin: cfg.MaxPerOrigin,
			OriginRate:   cfg.OriginRate,
			OriginBurst:  cfg.OriginBurst,
			StaleAfter:   cfg.StaleAfter,
			Trace:        trace,
		})
		if err != nil {
			return nil, err
		}
		h.agents = append(h.agents, &Agent{Index: i, Dir: dir, Fault: ft, Trace: trace, ep: ep, alive: true})
	}
	return h, nil
}

// Agent returns agent i.
func (h *Harness) Agent(i int) *Agent { return h.agents[i] }

// Now returns the current virtual time.
func (h *Harness) Now() time.Time { return h.clk.Now() }

// CreateSessions makes each agent announce SessionsPerAgent sessions.
// Announcements propagate immediately (the Bus is synchronous), subject to
// whatever faults are already installed.
func (h *Harness) CreateSessions() error {
	for _, a := range h.agents {
		for j := 0; j < h.cfg.SessionsPerAgent; j++ {
			_, err := a.Dir.CreateSession(&session.Description{
				Name: fmt.Sprintf("chaos-%d-%d", a.Index, j),
				TTL:  h.cfg.TTL,
				Media: []session.Media{
					{Type: "audio", Port: 5004, Proto: "RTP/AVP", Format: "0"},
				},
			})
			if err != nil {
				return fmt.Errorf("chaos: agent %d session %d: %w", a.Index, j, err)
			}
		}
	}
	return nil
}

// SetFaults installs profile as the ingress fault process of every live
// agent — independent per-receiver loss, the paper's tail-loss regime.
// Egress stays clean so a packet's fate is decided per receiver.
func (h *Harness) SetFaults(profile transport.FaultProfile) {
	for _, a := range h.agents {
		if a.alive {
			a.Fault.SetProfiles(transport.FaultProfile{}, profile)
		}
	}
}

// ClearFaults removes all fault profiles and flushes every delay queue so
// no packet is stranded once the fault phase of a schedule ends.
func (h *Harness) ClearFaults() {
	h.SetFaults(transport.FaultProfile{})
	h.FlushDelayed()
}

// FlushDelayed drains every live agent's delay queue immediately.
func (h *Harness) FlushDelayed() {
	for _, a := range h.agents {
		if a.alive {
			_, _ = a.Fault.FlushDelayed() // send errors = injected loss; announce repair covers it
		}
	}
}

// Partition splits the fabric by agent index; agents in no group are cut
// off. Compare Bus.Partition, which speaks endpoint IDs.
func (h *Harness) Partition(groups ...[]int) {
	idGroups := make([][]int, len(groups))
	for gi, g := range groups {
		for _, idx := range g {
			idGroups[gi] = append(idGroups[gi], h.agents[idx].ep.ID())
		}
	}
	h.bus.Partition(idGroups...)
}

// Heal removes any active partition.
func (h *Harness) Heal() { h.bus.Heal() }

// Kill stops agent i for good: its directory closes and its transport
// (including the bus endpoint) shuts down, so the fleet stops hearing its
// announcements — the silent-announcer case whose state must expire.
func (h *Harness) Kill(i int) {
	a := h.agents[i]
	if !a.alive {
		return
	}
	a.alive = false
	a.Dir.Close()
	_ = a.Fault.Close() // bus endpoints do not fail on close
}

// Run executes the schedule over the given virtual duration. Each tick:
// due events fire, then adversaries spend their packet budgets (in the
// order they were added), then every live agent's delay queue is stepped,
// then every live directory's timers run. Agents are always visited in
// index order — iteration order is part of the determinism contract.
func (h *Harness) Run(events []Event, duration time.Duration) {
	evs := append([]Event(nil), events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	for elapsed := time.Duration(0); elapsed < duration; {
		elapsed += h.cfg.Tick
		now := h.clk.Advance(h.cfg.Tick)
		for len(evs) > 0 && evs[0].At <= elapsed {
			ev := evs[0]
			evs = evs[1:]
			ev.Do(h)
		}
		for _, adv := range h.advs {
			adv.step(elapsed)
		}
		for _, a := range h.agents {
			if a.alive {
				_, _ = a.Fault.Step(now) // delayed-send errors = loss; repaired by re-announcement
			}
		}
		for _, a := range h.agents {
			if a.alive {
				a.Dir.Step(now)
			}
		}
	}
}

// Fingerprint summarises agent i's view of the world: one sorted
// "key addr" line per live session it knows. Two agents with equal
// fingerprints agree on the session set and every address.
func (h *Harness) Fingerprint(i int) string {
	descs := h.agents[i].Dir.Sessions()
	lines := make([]string, 0, len(descs))
	for _, d := range descs {
		lines = append(lines, d.Key()+" "+d.Group.String())
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// Converged reports whether every live agent holds the same fingerprint,
// returning that fingerprint and, on disagreement, the dissenting agents.
func (h *Harness) Converged() (fp string, ok bool, dissent []int) {
	first := -1
	for _, a := range h.agents {
		if !a.alive {
			continue
		}
		f := h.Fingerprint(a.Index)
		if first < 0 {
			first, fp, ok = a.Index, f, true
			continue
		}
		if f != fp {
			ok = false
			dissent = append(dissent, a.Index)
		}
	}
	return fp, ok, dissent
}

// AddressClashes returns every multicast address currently announced by
// more than one live agent's *own* sessions — the allocations the clash
// protocol exists to keep distinct. Empty means clash-free.
func (h *Harness) AddressClashes() []string {
	type owned struct{ addr, key string }
	var all []owned
	for _, a := range h.agents {
		if !a.alive {
			continue
		}
		for _, d := range a.Dir.OwnSessions() {
			all = append(all, owned{addr: d.Group.String(), key: d.Key()})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].addr != all[j].addr {
			return all[i].addr < all[j].addr
		}
		return all[i].key < all[j].key
	})
	var clashes []string
	for i := 1; i < len(all); i++ {
		if all[i].addr == all[i-1].addr && all[i].key != all[i-1].key {
			clashes = append(clashes, fmt.Sprintf("%s: %s vs %s", all[i].addr, all[i-1].key, all[i].key))
		}
	}
	return clashes
}

// TotalAddressChanges sums phase-2 clash moves across live agents — the
// quantity that must go quiet for clash correction to count as terminated.
func (h *Harness) TotalAddressChanges() uint64 {
	var n uint64
	for _, a := range h.agents {
		if a.alive {
			n += a.Dir.Metrics().ClashAddressChanges
		}
	}
	return n
}

// SessionCount returns how many sessions agent i currently knows.
func (h *Harness) SessionCount(i int) int { return len(h.agents[i].Dir.Sessions()) }

// Knows reports whether agent i currently caches a session with the given
// key.
func (h *Harness) Knows(i int, key string) bool {
	for _, d := range h.agents[i].Dir.Sessions() {
		if d.Key() == key {
			return true
		}
	}
	return false
}
