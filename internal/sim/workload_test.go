package sim

import (
	"testing"

	"sessiondir/internal/allocator"
	"sessiondir/internal/mcast"
	"sessiondir/internal/stats"
	"sessiondir/internal/topology"
)

func TestRandomWorkload(t *testing.T) {
	g := testMbone(t, 400)
	w := RandomWorkload{Graph: g, Dist: mcast.DS4()}
	rng := stats.NewRNG(1)
	seenTTL := map[mcast.TTL]bool{}
	for i := 0; i < 500; i++ {
		origin, ttl := w.New(rng)
		if int(origin) < 0 || int(origin) >= g.NumNodes() {
			t.Fatalf("origin %d out of range", origin)
		}
		seenTTL[ttl] = true
	}
	if len(seenTTL) != 7 {
		t.Fatalf("saw %d distinct TTLs, want 7", len(seenTTL))
	}
	if w.Name() == "" {
		t.Fatal("name")
	}
}

func TestSameSiteWorkload(t *testing.T) {
	g := testMbone(t, 400)
	w := SameSiteWorkload{Inner: RandomWorkload{Graph: g, Dist: mcast.DS4()}}
	rng := stats.NewRNG(2)
	departed := Session{Origin: 17, TTL: 47}
	for i := 0; i < 10; i++ {
		origin, ttl := w.Replace(departed, rng)
		if origin != 17 || ttl != 47 {
			t.Fatalf("replacement moved: %d/%d", origin, ttl)
		}
	}
	if w.Name() == "" {
		t.Fatal("name")
	}
}

func TestCommunityWorkloadValidation(t *testing.T) {
	if _, err := NewCommunityWorkload(nil); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := NewCommunityWorkload([]Community{{Name: "x", Weight: 1}}); err == nil {
		t.Fatal("nodeless community accepted")
	}
	if _, err := NewCommunityWorkload([]Community{{Name: "x", Nodes: []topology.NodeID{1}, Weight: 0}}); err == nil {
		t.Fatal("zero weight accepted")
	}
}

func TestCommunityWorkloadStability(t *testing.T) {
	communities := []Community{
		{Name: "a", Nodes: []topology.NodeID{0, 1, 2}, TTL: 15, Weight: 1},
		{Name: "b", Nodes: []topology.NodeID{10, 11}, TTL: 127, Weight: 1},
	}
	w, err := NewCommunityWorkload(communities)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(3)
	// Replacement stays in the departed session's community: same TTL,
	// origin from the same node set.
	for i := 0; i < 100; i++ {
		origin, ttl := w.Replace(Session{Origin: 1, TTL: 15}, rng)
		if ttl != 15 || int(origin) > 2 {
			t.Fatalf("replacement left community a: %d/%d", origin, ttl)
		}
		origin, ttl = w.Replace(Session{Origin: 11, TTL: 127}, rng)
		if ttl != 127 || origin != 10 && origin != 11 {
			t.Fatalf("replacement left community b: %d/%d", origin, ttl)
		}
	}
	// Unknown origin falls back to a fresh draw without panicking.
	if _, ttl := w.Replace(Session{Origin: 99, TTL: 1}, rng); ttl != 15 && ttl != 127 {
		t.Fatalf("fallback TTL %d", ttl)
	}
}

func TestCommunitiesFromCountries(t *testing.T) {
	g := testMbone(t, 400)
	comms, err := CommunitiesFromCountries(g)
	if err != nil {
		t.Fatal(err)
	}
	// 4 local scopes per country + 1 per continent + 2 global.
	zones, _ := topology.ZonesFromCountries(g)
	if len(comms) < 4*len(zones)+3 {
		t.Fatalf("communities = %d for %d zones", len(comms), len(zones))
	}
	for _, c := range comms {
		if len(c.Nodes) == 0 || c.Weight <= 0 {
			t.Fatalf("degenerate community %+v", c.Name)
		}
	}
	// The marginal TTL distribution must match DS4.
	w, err := NewCommunityWorkload(comms)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(4)
	counts := map[mcast.TTL]int{}
	const draws = 44000
	for i := 0; i < draws; i++ {
		origin, ttl := w.New(rng)
		if int(origin) >= g.NumNodes() {
			t.Fatalf("origin %d out of range", origin)
		}
		counts[ttl]++
	}
	wantShare := map[mcast.TTL]float64{1: 8, 15: 6, 31: 2, 47: 2, 63: 2, 127: 1, 191: 1}
	for ttl, share := range wantShare {
		got := float64(counts[ttl]) / draws
		want := share / 22
		if got < want*0.85 || got > want*1.15 {
			t.Fatalf("TTL %d share %.4f, DS4 says %.4f", ttl, got, want)
		}
	}
}

// TestClusteringPostulate checks §2.6's conjecture as implemented: under
// community churn (stable per-band populations) the small-gap adaptive
// allocator sustains at least as many sessions as under fully random
// churn, typically more.
func TestClusteringPostulate(t *testing.T) {
	g := testMbone(t, 400)
	cache := topology.NewReachCache(g)
	comms, err := CommunitiesFromCountries(g)
	if err != nil {
		t.Fatal(err)
	}
	cw, err := NewCommunityWorkload(comms)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() allocator.Allocator {
		return allocator.NewAdaptive(256, allocator.AdaptiveConfig{GapFraction: 0.2})
	}
	const n = 80
	rng := stats.NewRNG(5)
	pRandom := ClashProbability(g, cache, SteadyStateConfig{
		Alloc: mk(), Dist: mcast.DS4(), Sessions: n,
	}, 12, rng.Split())
	pCluster := ClashProbability(g, cache, SteadyStateConfig{
		Alloc: mk(), Sessions: n, Workload: cw,
	}, 12, rng.Split())
	if pCluster > pRandom+0.3 {
		t.Fatalf("clustered churn (%v) much worse than random (%v)", pCluster, pRandom)
	}
}
