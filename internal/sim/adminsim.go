package sim

import (
	"sessiondir/internal/allocator"
	"sessiondir/internal/stats"
	"sessiondir/internal/topology"
)

// This file simulates allocation under *administrative* scoping (§1): a
// session is scoped to the admin zone of its originator; announcements
// reach exactly the zone; the same address may be in use in any number of
// zones simultaneously without clashing. The point, which
// TestAdminScopingMakesIREasy and the adminscope experiment demonstrate,
// is the paper's remark that "the simpler solutions work well for
// administrative scope zone address allocation" — symmetric visibility
// turns informed-random into a perfect allocator.

// AdminFillResult is the outcome of an admin-scoped fill run.
type AdminFillResult struct {
	Allocations int
	Clashes     int
	ZonesFull   int
}

// FillAdminZones allocates sessions with admin scoping until every zone's
// space is exhausted or maxSessions is reached, counting clashes. The
// allocator sees the zone-local view (perfect, by admin-scope symmetry).
func FillAdminZones(zones []*topology.AdminZone, alloc func() allocator.Allocator, maxSessions int, rng *stats.RNG) AdminFillResult {
	type zoneState struct {
		alloc allocator.Allocator
		used  []allocator.SessionInfo
		inUse map[uint32]bool
		full  bool
	}
	states := make([]*zoneState, len(zones))
	for i := range zones {
		states[i] = &zoneState{alloc: alloc(), inUse: make(map[uint32]bool)}
	}
	var res AdminFillResult
	live := len(zones)
	for res.Allocations < maxSessions && live > 0 {
		zi := rng.IntN(len(zones))
		st := states[zi]
		if st.full {
			continue
		}
		// Admin-scoped sessions use the zone-relative TTL convention of a
		// fixed in-zone scope; TTL plays no partitioning role here.
		addr, err := st.alloc.Allocate(st.used, 255, rng)
		if err != nil {
			st.full = true
			live--
			res.ZonesFull++
			continue
		}
		if st.inUse[uint32(addr)] {
			res.Clashes++
		}
		st.inUse[uint32(addr)] = true
		st.used = append(st.used, allocator.SessionInfo{Addr: addr, TTL: 255})
		res.Allocations++
	}
	return res
}
