package sim

import (
	"sessiondir/internal/allocator"
	"sessiondir/internal/stats"
	"sessiondir/internal/topology"
)

// This file simulates allocation under *administrative* scoping (§1): a
// session is scoped to the admin zone of its originator; announcements
// reach exactly the zone; the same address may be in use in any number of
// zones simultaneously without clashing. The point, which
// TestAdminScopingMakesIREasy and the adminscope experiment demonstrate,
// is the paper's remark that "the simpler solutions work well for
// administrative scope zone address allocation" — symmetric visibility
// turns informed-random into a perfect allocator.

// AdminFillResult is the outcome of an admin-scoped fill run.
type AdminFillResult struct {
	Allocations int
	Clashes     int
	ZonesFull   int
}

// addrSet is a slice-backed address membership set. The fill loop only
// ever asks "is this address taken?", but backing it with a bitset (not a
// map) keeps the set impossible to iterate in randomized order — the
// mclint/maporder audit class — and avoids per-address map overhead.
type addrSet struct {
	words []uint64
}

func (s *addrSet) has(a uint32) bool {
	w := int(a >> 6)
	return w < len(s.words) && s.words[w]&(1<<(a&63)) != 0
}

func (s *addrSet) add(a uint32) {
	w := int(a >> 6)
	for w >= len(s.words) {
		s.words = append(s.words, 0)
	}
	s.words[w] |= 1 << (a & 63)
}

// FillAdminZones allocates sessions with admin scoping until every zone's
// space is exhausted or maxSessions is reached, counting clashes. The
// allocator sees the zone-local view (perfect, by admin-scope symmetry).
func FillAdminZones(zones []*topology.AdminZone, alloc func() allocator.Allocator, maxSessions int, rng *stats.RNG) AdminFillResult {
	type zoneState struct {
		alloc allocator.Allocator
		used  []allocator.SessionInfo
		inUse addrSet
		full  bool
	}
	states := make([]*zoneState, len(zones))
	for i := range zones {
		states[i] = &zoneState{alloc: alloc()}
	}
	var res AdminFillResult
	live := len(zones)
	for res.Allocations < maxSessions && live > 0 {
		zi := rng.IntN(len(zones))
		st := states[zi]
		if st.full {
			continue
		}
		// Admin-scoped sessions use the zone-relative TTL convention of a
		// fixed in-zone scope; TTL plays no partitioning role here.
		addr, err := st.alloc.Allocate(st.used, 255, rng)
		if err != nil {
			st.full = true
			live--
			res.ZonesFull++
			continue
		}
		if st.inUse.has(uint32(addr)) {
			res.Clashes++
		}
		st.inUse.add(uint32(addr))
		st.used = append(st.used, allocator.SessionInfo{Addr: addr, TTL: 255})
		res.Allocations++
	}
	return res
}
