package sim

import (
	"fmt"
	"sync/atomic"

	"sessiondir/internal/allocator"
	"sessiondir/internal/mcast"
	"sessiondir/internal/par"
	"sessiondir/internal/stats"
	"sessiondir/internal/topology"
)

// parallelVisMin is the resident-session count below which the
// partitioned visibility scan stays serial: the per-partition handoff
// only pays for itself once each partition holds thousands of reach
// tests. The scan's output is identical either way.
const parallelVisMin = 4096

// handle locates one session inside a PartitionedWorld: the partition it
// lives in and its index there.
type handle struct {
	part int32
	idx  int32
}

// PartitionedWorld is World scaled out: the resident session set is
// striped across partitions so the O(sessions) hot paths — the
// visibility scan behind every allocation, the clash check behind every
// placement — fan out across workers and merge in partition order.
//
// Determinism: the world also keeps a global order index that mirrors
// exactly the session order a serial World would hold (Add appends;
// RemoveAt swap-removes through the index the way World.RemoveAt
// swap-removes its slice). Workload draws (victim selection, origins,
// TTLs) therefore consume the same RNG stream at any partition count,
// and the visibility scan's merge concatenates partitions in index
// order — a fixed permutation of the serial scan's output. Every
// consumer of that view is order-insensitive (the allocators build
// commutative band counts and a used-address bitset before drawing), so
// occupancy runs are bit-identical across partition AND worker counts,
// including the one-partition serial oracle.
type PartitionedWorld struct {
	Graph *topology.Graph
	Cache *topology.ReachCache
	// parts holds the resident sessions, striped round-robin at Add time.
	parts [][]Session
	// order mirrors the serial World's Sessions order: order[k] locates
	// the session a serial world would hold at index k.
	order []handle
	// ords is the reverse map: ords[p][i] is the global order index of
	// parts[p][i], maintained so swap-removes stay O(1).
	ords [][]int
	// workers caps scan concurrency (0 = GOMAXPROCS).
	workers int
	// scratch backs the per-partition visibility scans; visScratch is the
	// merged view handed to the allocator. Valid until the next VisibleAt.
	scratch    [][]allocator.SessionInfo
	visScratch []allocator.SessionInfo
}

// NewPartitionedWorld returns an empty world over g striped into parts
// partitions (min 1), scanning with up to workers goroutines. A shared
// ReachCache may be passed (nil = a private one).
func NewPartitionedWorld(g *topology.Graph, cache *topology.ReachCache, parts, workers int) *PartitionedWorld {
	if parts < 1 {
		parts = 1
	}
	if cache == nil {
		cache = topology.NewReachCache(g)
	}
	return &PartitionedWorld{
		Graph:   g,
		Cache:   cache,
		parts:   make([][]Session, parts),
		ords:    make([][]int, parts),
		workers: workers,
		scratch: make([][]allocator.SessionInfo, parts),
	}
}

// Len returns the resident session count.
func (w *PartitionedWorld) Len() int { return len(w.order) }

// Add appends a session, striping it round-robin by arrival index.
func (w *PartitionedWorld) Add(origin topology.NodeID, ttl mcast.TTL, addr mcast.Addr) {
	p := len(w.order) % len(w.parts)
	w.parts[p] = append(w.parts[p], Session{
		Origin: origin,
		TTL:    ttl,
		Addr:   addr,
		reach:  w.Cache.Reach(origin, ttl),
	})
	w.ords[p] = append(w.ords[p], len(w.order))
	w.order = append(w.order, handle{part: int32(p), idx: int32(len(w.parts[p]) - 1)})
}

// RemoveAt deletes the session a serial World would hold at index k,
// with World.RemoveAt's swap-remove semantics on the order index — so a
// workload drawing victim indices from an RNG removes the same sessions
// at any partition count.
func (w *PartitionedWorld) RemoveAt(k int) {
	h := w.order[k]
	p := int(h.part)
	li := len(w.parts[p]) - 1
	if int(h.idx) != li {
		// Swap-remove inside the partition; re-point the moved session's
		// order entry.
		w.parts[p][h.idx] = w.parts[p][li]
		moved := w.ords[p][li]
		w.ords[p][h.idx] = moved
		w.order[moved] = handle{part: h.part, idx: h.idx}
	}
	w.parts[p][li] = Session{} // drop the reach pointer
	w.parts[p] = w.parts[p][:li]
	w.ords[p] = w.ords[p][:li]

	last := len(w.order) - 1
	if k != last {
		w.order[k] = w.order[last]
		lh := w.order[k]
		w.ords[lh.part][lh.idx] = k
	}
	w.order = w.order[:last]
}

// VisibleAt returns the sessions whose announcements reach the observer,
// merged in partition order. Backed by per-world scratch: valid until
// the next VisibleAt call, not to be retained (the Allocator contract
// already forbids retention).
func (w *PartitionedWorld) VisibleAt(observer topology.NodeID) []allocator.SessionInfo {
	workers := w.workers
	if len(w.order) < parallelVisMin || len(w.parts) == 1 {
		workers = 1
	}
	par.For(workers, len(w.parts), func(p int) {
		out := w.scratch[p][:0]
		sessions := w.parts[p]
		for i := range sessions {
			if sessions[i].reach.Contains(observer) {
				out = append(out, allocator.SessionInfo{
					Addr: sessions[i].Addr,
					TTL:  sessions[i].TTL,
				})
			}
		}
		w.scratch[p] = out
	})
	merged := w.visScratch[:0]
	for p := range w.scratch {
		merged = append(merged, w.scratch[p]...)
	}
	w.visScratch = merged
	return merged
}

// Clashes reports whether a session at (origin, ttl, addr) clashes with
// any resident session — same address, intersecting scopes. The
// partitioned scan early-exits once any partition finds a clash; the
// boolean is scan-order-independent.
func (w *PartitionedWorld) Clashes(origin topology.NodeID, ttl mcast.TTL, addr mcast.Addr) bool {
	reach := w.Cache.Reach(origin, ttl)
	workers := w.workers
	if len(w.order) < parallelVisMin || len(w.parts) == 1 {
		workers = 1
	}
	var found atomic.Bool
	par.For(workers, len(w.parts), func(p int) {
		sessions := w.parts[p]
		for i := range sessions {
			if sessions[i].Addr == addr && sessions[i].reach.Intersects(reach) {
				found.Store(true)
				return
			}
			if i&1023 == 1023 && found.Load() {
				return // another partition already found one
			}
		}
	})
	return found.Load()
}

// OccupancyConfig drives one occupancy run: fill the world to a resident
// session target (Figure-5 shape, but sessions persist past their first
// clash — at directory scale a clash is a protocol event, not the end of
// the experiment), then churn replacements through the full world
// (Figure-12 shape at fixed high occupancy).
type OccupancyConfig struct {
	Graph *topology.Graph
	// Cache optionally shares reach sets across runs (nil = private).
	Cache *topology.ReachCache
	Alloc allocator.Allocator
	Dist  mcast.TTLDistribution
	// Sessions is the resident target (the scale claim's 100k+).
	Sessions int
	// Churn is the number of remove-and-replace operations after fill
	// (0 = Sessions/10).
	Churn int
	// Partitions stripes the session set (0 = 8).
	Partitions int
	// Workers caps scan concurrency: 0 = GOMAXPROCS, 1 = serial. Results
	// are bit-identical for every value.
	Workers int
	Seed    uint64
}

// OccupancyResult is the outcome of one occupancy run.
type OccupancyResult struct {
	Algorithm    string
	Sessions     int     // configured resident target
	SpaceSize    uint32  // the allocator's address space
	Partitions   int     // stripes used
	Placed       int     // sessions resident after the fill phase
	FillClashes  int     // clashing placements during fill
	ChurnClashes int     // clashing placements during churn
	Exhausted    int     // allocation failures (space exhausted for that view)
	Occupancy    float64 // resident sessions / address space at end of fill
}

// RunOccupancy executes one occupancy run. Deterministic for a fixed
// Seed at any Partitions/Workers combination (see PartitionedWorld).
func RunOccupancy(cfg OccupancyConfig) OccupancyResult {
	if cfg.Alloc == nil {
		panic("sim: OccupancyConfig.Alloc is required")
	}
	if cfg.Sessions < 1 {
		cfg.Sessions = 1
	}
	if cfg.Churn == 0 {
		cfg.Churn = cfg.Sessions / 10
	}
	if cfg.Partitions < 1 {
		cfg.Partitions = 8
	}
	rng := stats.NewRNG(cfg.Seed)
	w := NewPartitionedWorld(cfg.Graph, cfg.Cache, cfg.Partitions, cfg.Workers)
	n := cfg.Graph.NumNodes()
	res := OccupancyResult{
		Algorithm:  cfg.Alloc.Name(),
		Sessions:   cfg.Sessions,
		SpaceSize:  cfg.Alloc.Size(),
		Partitions: cfg.Partitions,
	}

	place := func(clashes *int) {
		origin := topology.NodeID(rng.IntN(n))
		ttl := cfg.Dist.Sample(rng.IntN)
		visible := w.VisibleAt(origin)
		addr, err := cfg.Alloc.Allocate(visible, ttl, rng)
		if err != nil {
			res.Exhausted++
			return
		}
		if w.Clashes(origin, ttl, addr) {
			*clashes++
		}
		w.Add(origin, ttl, addr)
	}

	for k := 0; k < cfg.Sessions; k++ {
		place(&res.FillClashes)
	}
	res.Placed = w.Len()
	res.Occupancy = float64(w.Len()) / float64(cfg.Alloc.Size())

	for j := 0; j < cfg.Churn && w.Len() > 0; j++ {
		w.RemoveAt(rng.IntN(w.Len()))
		place(&res.ChurnClashes)
	}
	return res
}

// String renders a result as a table row.
func (r OccupancyResult) String() string {
	return fmt.Sprintf("%-18s sessions=%-7d space=%-7d parts=%-2d placed=%-7d occ=%5.1f%% fill-clash=%-6d churn-clash=%-6d exhausted=%d",
		r.Algorithm, r.Sessions, r.SpaceSize, r.Partitions, r.Placed,
		r.Occupancy*100, r.FillClashes, r.ChurnClashes, r.Exhausted)
}
