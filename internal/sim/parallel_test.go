package sim

import (
	"reflect"
	"testing"

	"sessiondir/internal/allocator"
	"sessiondir/internal/mcast"
	"sessiondir/internal/stats"
	"sessiondir/internal/topology"
)

func parallelTestGraph(t *testing.T) *topology.Graph {
	t.Helper()
	g, err := topology.GenerateMbone(topology.MboneConfig{Nodes: 120}, stats.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// The parallel engine's contract: RunFig5 output is bit-identical at any
// worker count because per-trial RNGs are pre-split in submission order and
// summaries are folded serially by index.
func TestRunFig5ParallelMatchesSerial(t *testing.T) {
	g := parallelTestGraph(t)
	mk := func(workers int) []Fig5Point {
		return RunFig5(Fig5Config{
			Graph:      g,
			SpaceSizes: []uint32{50, 100},
			Dists:      []mcast.TTLDistribution{mcast.DS1(), mcast.DS4()},
			MakeAlloc:  func(size uint32) allocator.Allocator { return allocator.NewInformedRandom(size) },
			Trials:     6,
			Seed:       1998,
			Workers:    workers,
		})
	}
	serial := mk(1)
	for _, workers := range []int{2, 4, 8} {
		if got := mk(workers); !reflect.DeepEqual(got, serial) {
			t.Fatalf("workers=%d diverges from serial:\n got  %+v\n want %+v", workers, got, serial)
		}
	}
}

// Same contract for the steady-state estimator behind Figures 12/13.
func TestClashProbabilityParallelMatchesSerial(t *testing.T) {
	g := parallelTestGraph(t)
	cache := topology.NewReachCache(g)
	run := func(workers int) float64 {
		return ClashProbability(g, cache, SteadyStateConfig{
			Alloc:    allocator.NewHybrid(100),
			Dist:     mcast.DS4(),
			Sessions: 30,
			Workers:  workers,
		}, 12, stats.NewRNG(77))
	}
	serial := run(1)
	for _, workers := range []int{2, 8} {
		if got := run(workers); got != serial {
			t.Fatalf("workers=%d: p=%v, serial p=%v", workers, got, serial)
		}
	}
}

// And for the full Figure-12 sweep, which nests ClashProbability probes.
func TestRunFig12ParallelMatchesSerial(t *testing.T) {
	g := parallelTestGraph(t)
	run := func(workers int) []Fig12Point {
		return RunFig12(Fig12Config{
			Graph:      g,
			SpaceSizes: []uint32{50},
			MakeAlloc: func(size uint32) allocator.Allocator {
				return allocator.NewStaticPartitioned(size, allocator.IPR3Separators())
			},
			Dist:    mcast.DS4(),
			Reps:    8,
			Seed:    1998,
			Workers: workers,
		})
	}
	serial := run(1)
	if got := run(6); !reflect.DeepEqual(got, serial) {
		t.Fatalf("parallel Fig12 diverges:\n got  %+v\n want %+v", got, serial)
	}
}
