package sim

import (
	"fmt"
	"sort"

	"sessiondir/internal/mcast"
	"sessiondir/internal/stats"
	"sessiondir/internal/topology"
)

// A Workload generates session origins and scopes for the steady-state
// experiments: the initial population and each churn replacement.
type Workload interface {
	// New draws a fresh session placement.
	New(rng *stats.RNG) (topology.NodeID, mcast.TTL)
	// Replace draws the placement of the session replacing a departed one.
	Replace(departed Session, rng *stats.RNG) (topology.NodeID, mcast.TTL)
	// Name labels the workload in experiment output.
	Name() string
}

// RandomWorkload is the paper's Figure-12 churn: origins uniform over the
// topology, TTLs i.i.d. from the distribution — maximal variation in where
// low-TTL sessions live, which §2.6 suspects is harsher than reality.
type RandomWorkload struct {
	Graph *topology.Graph
	Dist  mcast.TTLDistribution
}

// New implements Workload.
func (w RandomWorkload) New(rng *stats.RNG) (topology.NodeID, mcast.TTL) {
	return topology.NodeID(rng.IntN(w.Graph.NumNodes())), w.Dist.Sample(rng.IntN)
}

// Replace implements Workload (fresh draw, ignoring the departed session).
func (w RandomWorkload) Replace(_ Session, rng *stats.RNG) (topology.NodeID, mcast.TTL) {
	return w.New(rng)
}

// Name implements Workload.
func (w RandomWorkload) Name() string { return "random(" + w.Dist.Name + ")" }

// SameSiteWorkload is the Figure-13 upper bound: a replacement keeps the
// departed session's source and TTL.
type SameSiteWorkload struct {
	Inner Workload
}

// New implements Workload.
func (w SameSiteWorkload) New(rng *stats.RNG) (topology.NodeID, mcast.TTL) {
	return w.Inner.New(rng)
}

// Replace implements Workload.
func (w SameSiteWorkload) Replace(departed Session, _ *stats.RNG) (topology.NodeID, mcast.TTL) {
	return departed.Origin, departed.TTL
}

// Name implements Workload.
func (w SameSiteWorkload) Name() string { return "same-site(" + w.Inner.Name() + ")" }

// Community is a user population with a home region and a habitual scope —
// §2.6's postulate: "a particular community chooses a TTL for their
// sessions and the number of sessions that community creates varies within
// more restricted bounds".
type Community struct {
	Name  string
	Nodes []topology.NodeID
	TTL   mcast.TTL
	// Weight is the community's share of the session population
	// (proportional; needs not sum to anything).
	Weight float64
}

// CommunityWorkload draws sessions from communities and replaces departed
// sessions *within the departed session's community*, keeping each
// community's session count — and therefore each TTL band's occupancy and
// locality — stable.
type CommunityWorkload struct {
	Communities []Community
	// A node may belong to several communities (its country's site
	// community, its continent's, the global one, ...); the departed
	// session's TTL disambiguates which community it came from.
	byNodeTTL map[nodeTTL]int
}

type nodeTTL struct {
	node topology.NodeID
	ttl  mcast.TTL
}

// NewCommunityWorkload validates and indexes the communities.
func NewCommunityWorkload(communities []Community) (*CommunityWorkload, error) {
	if len(communities) == 0 {
		return nil, fmt.Errorf("sim: no communities")
	}
	w := &CommunityWorkload{
		Communities: communities,
		byNodeTTL:   make(map[nodeTTL]int),
	}
	for i, c := range communities {
		if len(c.Nodes) == 0 {
			return nil, fmt.Errorf("sim: community %q has no nodes", c.Name)
		}
		if c.Weight <= 0 {
			return nil, fmt.Errorf("sim: community %q has non-positive weight", c.Name)
		}
		for _, n := range c.Nodes {
			key := nodeTTL{n, c.TTL}
			if _, dup := w.byNodeTTL[key]; dup {
				return nil, fmt.Errorf("sim: node %d belongs to two communities with TTL %d", n, c.TTL)
			}
			w.byNodeTTL[key] = i
		}
	}
	return w, nil
}

// New implements Workload.
func (w *CommunityWorkload) New(rng *stats.RNG) (topology.NodeID, mcast.TTL) {
	choices := make([]stats.WeightedChoice[int], len(w.Communities))
	for i, c := range w.Communities {
		choices[i] = stats.WeightedChoice[int]{Value: i, Weight: c.Weight}
	}
	return w.fromCommunity(stats.PickWeighted(rng, choices), rng)
}

// Replace implements Workload: the replacement stays in the community.
func (w *CommunityWorkload) Replace(departed Session, rng *stats.RNG) (topology.NodeID, mcast.TTL) {
	if ci, ok := w.byNodeTTL[nodeTTL{departed.Origin, departed.TTL}]; ok {
		return w.fromCommunity(ci, rng)
	}
	return w.New(rng)
}

func (w *CommunityWorkload) fromCommunity(ci int, rng *stats.RNG) (topology.NodeID, mcast.TTL) {
	c := w.Communities[ci]
	return stats.Pick(rng, c.Nodes), c.TTL
}

// Name implements Workload.
func (w *CommunityWorkload) Name() string {
	return fmt.Sprintf("community(%d)", len(w.Communities))
}

// CommunitiesFromCountries builds a community structure from an Mbone's
// labels whose *marginal* TTL distribution matches DS4 exactly — so a
// comparison against RandomWorkload(DS4) isolates the clustering effect
// §2.6 postulates (stable per-community counts and locations) from any
// change in the scope mix. Local scopes (TTL 1/15/31/47) get one community
// per country, continental scope (63) one per continent, and the wide
// scopes (127/191) are global communities.
func CommunitiesFromCountries(g *topology.Graph) ([]Community, error) {
	zones, err := topology.ZonesFromCountries(g)
	if err != nil {
		return nil, err
	}
	// DS4 weights: {1×8, 15×6, 31×2, 47×2, 63×2, 127×1, 191×1} of 22.
	// The shares are an ordered slice, not a map: community order feeds
	// stats.PickWeighted's cumulative walk, so iterating a map here would
	// reshuffle which RNG draw lands on which community every run.
	localShare := []struct {
		ttl   mcast.TTL
		share float64
	}{{1, 8}, {15, 6}, {31, 2}, {47, 2}}
	var out []Community
	for _, z := range zones {
		nodes := z.Members().Members()
		for _, ls := range localShare {
			out = append(out, Community{
				Name:   fmt.Sprintf("%s/ttl%d", z.Name, ls.ttl),
				Nodes:  nodes,
				TTL:    ls.ttl,
				Weight: ls.share * float64(len(nodes)),
			})
		}
	}
	byContinent := map[string][]topology.NodeID{}
	var all []topology.NodeID
	for i := 0; i < g.NumNodes(); i++ {
		c := g.Nodes[i].Continent
		byContinent[c] = append(byContinent[c], topology.NodeID(i))
		all = append(all, topology.NodeID(i))
	}
	// Sorted continent names for the same reason as localShare above:
	// community order is part of the workload's deterministic identity.
	names := make([]string, 0, len(byContinent))
	for name := range byContinent {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		nodes := byContinent[name]
		out = append(out, Community{
			Name:   name + "/ttl63",
			Nodes:  nodes,
			TTL:    63,
			Weight: 2 * float64(len(nodes)),
		})
	}
	out = append(out,
		Community{Name: "world/ttl127", Nodes: all, TTL: 127, Weight: 1 * float64(len(all))},
		Community{Name: "world/ttl191", Nodes: all, TTL: 191, Weight: 1 * float64(len(all))},
	)
	return out, nil
}
