package sim

import (
	"testing"

	"sessiondir/internal/allocator"
	"sessiondir/internal/mcast"
	"sessiondir/internal/stats"
	"sessiondir/internal/topology"
)

func TestZonesFromCountries(t *testing.T) {
	g := testMbone(t, 400)
	zones, err := topology.ZonesFromCountries(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(zones) < 5 {
		t.Fatalf("only %d zones", len(zones))
	}
	// Zones partition the labelled nodes: disjoint and covering.
	covered := 0
	for i, z := range zones {
		covered += z.Size()
		for j := i + 1; j < len(zones); j++ {
			if z.Members().Intersects(zones[j].Members()) {
				t.Fatalf("zones %s and %s overlap", z.Name, zones[j].Name)
			}
		}
	}
	if covered != g.NumNodes() {
		t.Fatalf("zones cover %d of %d nodes", covered, g.NumNodes())
	}
	if z := topology.ZoneOf(zones, 0); z == nil || !z.Contains(0) {
		t.Fatal("ZoneOf broken")
	}
}

func TestAdminZoneValidation(t *testing.T) {
	g := testMbone(t, 400)
	if _, err := topology.NewAdminZone("", g, []topology.NodeID{0}); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := topology.NewAdminZone("z", g, nil); err == nil {
		t.Fatal("empty zone accepted")
	}
	if _, err := topology.NewAdminZone("z", g, []topology.NodeID{topology.NodeID(g.NumNodes())}); err == nil {
		t.Fatal("out-of-graph member accepted")
	}
}

// TestAdminScopingMakesIREasy asserts the paper's §1 observation: with
// administrative scoping's symmetric visibility, plain informed-random
// fills every zone completely with zero clashes — the hard problem the
// rest of the paper solves only exists under TTL scoping.
func TestAdminScopingMakesIREasy(t *testing.T) {
	g := testMbone(t, 400)
	zones, err := topology.ZonesFromCountries(g)
	if err != nil {
		t.Fatal(err)
	}
	const space = 64
	res := FillAdminZones(zones, func() allocator.Allocator {
		return allocator.NewInformedRandom(space)
	}, 100000, stats.NewRNG(31))
	if res.Clashes != 0 {
		t.Fatalf("IR clashed %d times under admin scoping", res.Clashes)
	}
	// Every zone fills its whole space: total = zones × space.
	want := len(zones) * space
	if res.Allocations != want {
		t.Fatalf("allocated %d, want %d (every zone full)", res.Allocations, want)
	}
	if res.ZonesFull != len(zones) {
		t.Fatalf("zones full = %d of %d", res.ZonesFull, len(zones))
	}
}

// TestAdminVsTTLScoping quantifies the contrast: the same IR allocator
// that is perfect under admin scoping clashes after ~√n under TTL scoping.
func TestAdminVsTTLScoping(t *testing.T) {
	g := testMbone(t, 400)
	const space = 256
	// TTL scoping (Figure 5 machinery).
	w := NewWorld(g)
	ttlRes := FillUntilClash(w, FillConfig{
		Alloc: allocator.NewInformedRandom(space),
		Dist:  mcast.DS4(),
	}, stats.NewRNG(32))
	// Admin scoping.
	zones, err := topology.ZonesFromCountries(g)
	if err != nil {
		t.Fatal(err)
	}
	adminRes := FillAdminZones(zones, func() allocator.Allocator {
		return allocator.NewInformedRandom(space)
	}, 100000, stats.NewRNG(32))

	if adminRes.Clashes != 0 {
		t.Fatalf("admin scoping clashed: %+v", adminRes)
	}
	if ttlRes.SpaceFull {
		t.Fatal("TTL-scoped IR run unexpectedly exhausted the space")
	}
	if adminRes.Allocations < 4*ttlRes.Allocations {
		t.Fatalf("admin scoping (%d clash-free) should dwarf TTL scoping (%d before clash)",
			adminRes.Allocations, ttlRes.Allocations)
	}
}
