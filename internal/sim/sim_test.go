package sim

import (
	"math"
	"testing"

	"sessiondir/internal/allocator"
	"sessiondir/internal/clash"
	"sessiondir/internal/mcast"
	"sessiondir/internal/stats"
	"sessiondir/internal/topology"
)

func testMbone(t testing.TB, nodes int) *topology.Graph {
	t.Helper()
	g, err := topology.GenerateMbone(topology.MboneConfig{Nodes: nodes}, stats.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestWorldVisibility(t *testing.T) {
	g := testMbone(t, 400)
	w := NewWorld(g)
	uk := topology.NodesInCountry(g, "UK")
	us := topology.NodesInCountry(g, "US")
	if len(uk) == 0 || len(us) == 0 {
		t.Fatal("countries missing")
	}
	// A UK national session is invisible in the US.
	w.Add(uk[0], 47, 5)
	if vis := w.VisibleAt(us[0]); len(vis) != 0 {
		t.Fatalf("US sees UK TTL-47 session: %v", vis)
	}
	if vis := w.VisibleAt(uk[0]); len(vis) != 1 {
		t.Fatalf("origin doesn't see its own session: %v", vis)
	}
	// A global session is visible everywhere.
	w.Add(us[0], 191, 6)
	if vis := w.VisibleAt(uk[len(uk)-1]); len(vis) < 1 {
		t.Fatal("UK doesn't see global session")
	}
}

func TestWorldClashSemantics(t *testing.T) {
	g := testMbone(t, 400)
	w := NewWorld(g)
	uk := topology.NodesInCountry(g, "UK")
	us := topology.NodesInCountry(g, "US")
	w.Add(uk[0], 47, 5)
	// Same address, disjoint scopes (UK-national vs US-national): no clash.
	if w.Clashes(us[0], 47, 5) {
		t.Fatal("disjoint scopes should not clash")
	}
	// Same address, overlapping scope (global session from the US): clash.
	if !w.Clashes(us[0], 191, 5) {
		t.Fatal("overlapping scopes with same address must clash")
	}
	// Different address: never a clash.
	if w.Clashes(us[0], 191, 6) {
		t.Fatal("different addresses should not clash")
	}
}

func TestWorldRemoveAt(t *testing.T) {
	g := testMbone(t, 400)
	w := NewWorld(g)
	w.Add(0, 191, 1)
	w.Add(1, 191, 2)
	w.Add(2, 191, 3)
	w.RemoveAt(0)
	if len(w.Sessions) != 2 {
		t.Fatalf("len = %d", len(w.Sessions))
	}
	for _, s := range w.Sessions {
		if s.Addr == 1 {
			t.Fatal("removed session still present")
		}
	}
}

func TestFillUntilClashRandomNearBirthday(t *testing.T) {
	// With global-only sessions, algorithm R must reproduce the birthday
	// bound: mean allocations ≈ √(πn/2) ≈ 1.25·√n.
	g := testMbone(t, 400)
	dist := mcast.TTLDistribution{Name: "global", Values: []mcast.TTL{191}}
	const space = 1024
	rng := stats.NewRNG(5)
	var s stats.Summary
	for i := 0; i < 40; i++ {
		w := NewWorld(g)
		res := FillUntilClash(w, FillConfig{
			Alloc: allocator.NewRandom(space),
			Dist:  dist,
		}, rng.Split())
		s.Add(float64(res.Allocations))
	}
	want := 1.2533 * math.Sqrt(space)
	if s.Mean() < want*0.7 || s.Mean() > want*1.3 {
		t.Fatalf("R mean %v, birthday predicts ≈%v", s.Mean(), want)
	}
}

func TestFillUntilClashInformedGlobalNeverClashes(t *testing.T) {
	// With only global sessions everyone sees everything, so IR fills the
	// whole space without a clash and stops on exhaustion.
	g := testMbone(t, 400)
	dist := mcast.TTLDistribution{Name: "global", Values: []mcast.TTL{191}}
	w := NewWorld(g)
	res := FillUntilClash(w, FillConfig{
		Alloc: allocator.NewInformedRandom(128),
		Dist:  dist,
	}, stats.NewRNG(6))
	if !res.SpaceFull {
		t.Fatalf("IR clashed with perfect visibility after %d", res.Allocations)
	}
	if res.Allocations != 128 {
		t.Fatalf("allocations = %d, want full space", res.Allocations)
	}
}

func TestFillUntilClashScopedBreaksIR(t *testing.T) {
	// The paper's central observation: once sessions are scoped, IR loses
	// its advantage because the dangerous sessions are invisible.
	g := testMbone(t, 800)
	const space = 512
	rng := stats.NewRNG(7)
	mean := func(mk func() allocator.Allocator) float64 {
		var s stats.Summary
		for i := 0; i < 25; i++ {
			w := NewWorld(g)
			res := FillUntilClash(w, FillConfig{Alloc: mk(), Dist: mcast.DS4()}, rng.Split())
			s.Add(float64(res.Allocations))
		}
		return s.Mean()
	}
	ir := mean(func() allocator.Allocator { return allocator.NewInformedRandom(space) })
	ipr7 := mean(func() allocator.Allocator { return allocator.NewStaticPartitioned(space, allocator.IPR7Separators()) })
	// Figure 5: IPR-7 beats IR decisively.
	if ipr7 < ir*1.5 {
		t.Fatalf("IPR7 (%v) should decisively beat IR (%v)", ipr7, ir)
	}
}

// TestIPR7BeatsIRSignificantly repeats the comparison as a Welch t-test:
// the Figure-5 separation must be statistical signal, not trial noise.
func TestIPR7BeatsIRSignificantly(t *testing.T) {
	g := testMbone(t, 800)
	const space = 512
	rng := stats.NewRNG(8)
	sample := func(mk func() allocator.Allocator) *stats.Summary {
		var s stats.Summary
		for i := 0; i < 20; i++ {
			w := NewWorld(g)
			res := FillUntilClash(w, FillConfig{Alloc: mk(), Dist: mcast.DS4()}, rng.Split())
			s.Add(float64(res.Allocations))
		}
		return &s
	}
	ir := sample(func() allocator.Allocator { return allocator.NewInformedRandom(space) })
	ipr7 := sample(func() allocator.Allocator {
		return allocator.NewStaticPartitioned(space, allocator.IPR7Separators())
	})
	if !stats.SignificantlyGreater(ipr7, ir) {
		tt, df := stats.WelchT(ipr7, ir)
		t.Fatalf("IPR7 (%.1f) vs IR (%.1f) not significant: t=%.2f df=%.1f",
			ipr7.Mean(), ir.Mean(), tt, df)
	}
}

func TestRunFig5Shape(t *testing.T) {
	g := testMbone(t, 400)
	pts := RunFig5(Fig5Config{
		Graph:      g,
		SpaceSizes: []uint32{64, 256},
		Dists:      []mcast.TTLDistribution{mcast.DS4()},
		MakeAlloc:  func(size uint32) allocator.Allocator { return allocator.NewRandom(size) },
		Trials:     10,
		Seed:       1,
	})
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	// More addresses → more allocations before a clash.
	if pts[1].MeanAllocs <= pts[0].MeanAllocs {
		t.Fatalf("no growth with space: %v then %v", pts[0], pts[1])
	}
	for _, p := range pts {
		if p.Algorithm != "R" || p.Dist != "ds4" || p.Trials != 10 {
			t.Fatalf("metadata wrong: %+v", p)
		}
		if p.String() == "" {
			t.Fatal("empty String()")
		}
	}
}

func TestSteadyStateOnceBasics(t *testing.T) {
	g := testMbone(t, 400)
	cache := topology.NewReachCache(g)
	res := RunSteadyStateOnce(g, cache, SteadyStateConfig{
		Alloc:    allocator.NewStaticPartitioned(512, allocator.IPR7Separators()),
		Dist:     mcast.DS4(),
		Sessions: 30,
	}, stats.NewRNG(8))
	if res.Exhausted {
		t.Fatal("30 sessions in 512 addresses should not exhaust")
	}
	if !res.RepairOK {
		t.Fatal("repair should converge at low occupancy")
	}
}

func TestSteadyStateUpperBoundGentler(t *testing.T) {
	// The Figure-13 upper bound (same source, same TTL replacement) must
	// sustain at least as many sessions as the full-churn variant.
	g := testMbone(t, 400)
	cache := topology.NewReachCache(g)
	mk := func() allocator.Allocator {
		return allocator.NewAdaptive(256, allocator.AdaptiveConfig{GapFraction: 0.2, Name: "AIPR-1"})
	}
	rng := stats.NewRNG(9)
	n := 60
	pChurn := ClashProbability(g, cache, SteadyStateConfig{
		Alloc: mk(), Dist: mcast.DS4(), Sessions: n,
	}, 15, rng.Split())
	pUpper := ClashProbability(g, cache, SteadyStateConfig{
		Alloc: mk(), Dist: mcast.DS4(), Sessions: n, UpperBound: true,
	}, 15, rng.Split())
	if pUpper > pChurn+0.25 {
		t.Fatalf("upper bound (%v) should not clash more than churn (%v)", pUpper, pChurn)
	}
}

func TestRunFig12Shape(t *testing.T) {
	g := testMbone(t, 400)
	pts := RunFig12(Fig12Config{
		Graph:      g,
		SpaceSizes: []uint32{100, 400},
		MakeAlloc: func(size uint32) allocator.Allocator {
			return allocator.NewStaticPartitioned(size, allocator.IPR7Separators())
		},
		Dist: mcast.DS4(),
		Reps: 8,
		Seed: 2,
	})
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[1].MaxAllocs <= pts[0].MaxAllocs {
		t.Fatalf("sustained sessions should grow with space: %+v", pts)
	}
	for _, p := range pts {
		if p.MaxAllocs <= 0 {
			t.Fatalf("degenerate point %+v", p)
		}
	}
}

func gridForReqResp(t testing.TB, n int) *topology.Graph {
	t.Helper()
	g, err := topology.GenerateGrid(topology.GridConfig{Nodes: n, RedundantLinks: true}, stats.NewRNG(21))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func allNodes(g *topology.Graph) []topology.NodeID {
	out := make([]topology.NodeID, g.NumNodes())
	for i := range out {
		out[i] = topology.NodeID(i)
	}
	return out
}

func TestReqRespStarTinyWindowEveryoneResponds(t *testing.T) {
	// A star with the requester at the hub: no member lies on the path
	// between any two others, so with a near-zero window no response can
	// reach another member in time — everyone responds. This is the
	// Figure-14 analytic upper bound met with equality.
	const n = 60
	g := topology.NewGraph(n)
	for i := 1; i < n; i++ {
		g.MustAddLink(0, topology.NodeID(i), 1, 1, 5)
	}
	r := RunReqResp(ReqRespConfig{
		Graph:     g,
		Mode:      SharedTree,
		Core:      0,
		Requester: 0,
		Members:   allNodes(g),
		Delay:     clash.NewUniformDelay(0, 0.0001),
	}, stats.NewRNG(3))
	if r.Responses != n-1 {
		t.Fatalf("responses = %d, want %d", r.Responses, n-1)
	}
}

func TestReqRespTinyWindowOnPathSuppressionOnly(t *testing.T) {
	// On a general tree a near-zero window still allows *on-path*
	// suppression (a response from an upstream member travels with the
	// request wavefront) — the "suppression within a bucket" the paper's
	// analytic bound ignores. Responses must stay below the group size but
	// well above the big-window handful.
	g := gridForReqResp(t, 300)
	r := RunReqResp(ReqRespConfig{
		Graph:     g,
		Mode:      SharedTree,
		Requester: 5,
		Members:   allNodes(g),
		Delay:     clash.NewUniformDelay(0, 0.0001),
	}, stats.NewRNG(3))
	if r.Responses < 25 || r.Responses >= 299 {
		t.Fatalf("responses = %d, want substantial but below 299", r.Responses)
	}
}

func TestReqRespHugeWindowFewRespond(t *testing.T) {
	// With a window much larger than network delays, suppression kicks in
	// and only a handful respond.
	g := gridForReqResp(t, 300)
	r := RunReqResp(ReqRespConfig{
		Graph:     g,
		Mode:      SharedTree,
		Requester: 5,
		Members:   allNodes(g),
		Delay:     clash.NewUniformDelay(0, 200000),
	}, stats.NewRNG(4))
	if r.Responses < 1 || r.Responses > 15 {
		t.Fatalf("responses = %d, want a handful", r.Responses)
	}
	if r.FirstArrivalAt < r.FirstSendAt {
		t.Fatal("arrival before send")
	}
}

func TestReqRespExponentialBeatsUniform(t *testing.T) {
	// At a mid-sized window the exponential distribution suppresses far
	// better than uniform (Figure 19's message).
	g := gridForReqResp(t, 800)
	run := func(d clash.DelayDist, seed uint64) float64 {
		var s stats.Summary
		rng := stats.NewRNG(seed)
		for i := 0; i < 5; i++ {
			r := RunReqResp(ReqRespConfig{
				Graph:     g,
				Mode:      SharedTree,
				Requester: topology.NodeID(i * 7),
				Members:   allNodes(g),
				Delay:     d,
			}, rng.Split())
			s.Add(float64(r.Responses))
		}
		return s.Mean()
	}
	uni := run(clash.NewUniformDelay(0, 3200), 5)
	exp := run(clash.NewExponentialDelay(0, 3200, 200), 5)
	if exp >= uni {
		t.Fatalf("exponential (%v) should beat uniform (%v)", exp, uni)
	}
	if exp > 12 {
		t.Fatalf("exponential responses %v, want small", exp)
	}
}

func TestReqRespSPTMode(t *testing.T) {
	g := gridForReqResp(t, 300)
	r := RunReqResp(ReqRespConfig{
		Graph:     g,
		Mode:      ShortestPathTree,
		Requester: 2,
		Members:   allNodes(g),
		Delay:     clash.NewExponentialDelay(0, 3200, 200),
	}, stats.NewRNG(6))
	if r.Responses < 1 {
		t.Fatal("no responses")
	}
	if r.Responses > 20 {
		t.Fatalf("too many responses: %d", r.Responses)
	}
}

func TestReqRespJitterStillWorks(t *testing.T) {
	g := gridForReqResp(t, 300)
	r := RunReqResp(ReqRespConfig{
		Graph:        g,
		Mode:         SharedTree,
		Requester:    2,
		Members:      allNodes(g),
		Delay:        clash.NewExponentialDelay(0, 3200, 200),
		JitterPerHop: 2,
	}, stats.NewRNG(7))
	if r.Responses < 1 {
		t.Fatal("no responses with jitter")
	}
}

func TestReqRespRequesterExcluded(t *testing.T) {
	g := gridForReqResp(t, 50)
	r := RunReqResp(ReqRespConfig{
		Graph:     g,
		Mode:      SharedTree,
		Requester: 3,
		Members:   []topology.NodeID{3}, // only the requester
		Delay:     clash.NewUniformDelay(0, 100),
	}, stats.NewRNG(8))
	if r.Responses != 0 {
		t.Fatalf("requester answered itself: %+v", r)
	}
}

func TestRunFig15Sweep(t *testing.T) {
	pts, err := RunFig15(Fig15Config{
		GroupSizes: []int{200, 400},
		D2Millis:   []float64{800, 51200},
		Mode:       SharedTree,
		Trials:     2,
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	// Larger D2 → fewer responses for the same group size.
	for i := 0; i+1 < len(pts); i += 2 {
		if pts[i+1].MeanResponses > pts[i].MeanResponses {
			t.Fatalf("responses grew with D2: %v then %v", pts[i], pts[i+1])
		}
	}
	for _, p := range pts {
		if p.String() == "" {
			t.Fatal("empty row")
		}
	}
}

func TestTreeModeString(t *testing.T) {
	if SharedTree.String() != "shared" || ShortestPathTree.String() != "spt" {
		t.Fatal("mode names")
	}
}
