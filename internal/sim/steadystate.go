package sim

import (
	"fmt"

	"sessiondir/internal/allocator"
	"sessiondir/internal/mcast"
	"sessiondir/internal/par"
	"sessiondir/internal/stats"
	"sessiondir/internal/topology"
)

// SteadyStateConfig parameterises one steady-state churn measurement — the
// §2.6 method behind Figures 12 and 13:
//
//  1. allocate n sessions (random source, TTL from the distribution)
//     without regard for clashes;
//  2. re-allocate addresses with the algorithm under test until no clash
//     exists;
//  3. replace n sessions one at a time (remove one at random, allocate a
//     new one), counting address clashes;
//  4. over many repetitions, estimate the probability that at least one
//     clash occurs during the mean session lifetime (= n replacements).
type SteadyStateConfig struct {
	Alloc allocator.Allocator
	Dist  mcast.TTLDistribution
	// Sessions is n, the steady-state population.
	Sessions int
	// UpperBound selects the Figure-13 variant: a replacement keeps the
	// departed session's source and TTL (only the address is fresh),
	// removing workload churn so only the allocator's headroom is tested.
	UpperBound bool
	// Workload overrides the session placement process entirely (the
	// clustering experiment uses CommunityWorkload). nil selects
	// RandomWorkload over Dist, wrapped per UpperBound.
	Workload Workload
	// RepairPasses bounds step 2's clash-elimination sweeps.
	RepairPasses int
	// Workers caps ClashProbability's concurrency across repetitions:
	// 0 means GOMAXPROCS, 1 forces the serial path. Estimates are
	// bit-identical for every worker count (per-rep RNGs are pre-split in
	// submission order). Alloc and Workload are shared across workers and
	// must be immutable, which every implementation in this repo is.
	Workers int
}

// workload resolves the effective Workload for a run over graph g.
func (cfg SteadyStateConfig) workload(g *topology.Graph) Workload {
	if cfg.Workload != nil {
		return cfg.Workload
	}
	var w Workload = RandomWorkload{Graph: g, Dist: cfg.Dist}
	if cfg.UpperBound {
		w = SameSiteWorkload{Inner: w}
	}
	return w
}

// SteadyStateResult is the outcome of one repetition.
type SteadyStateResult struct {
	Clashes   int  // clashes observed during the n replacements
	RepairOK  bool // step 2 reached a clash-free state
	Exhausted bool // an allocation failed outright (space full)
}

// RunSteadyStateOnce performs one repetition of the §2.6 method.
func RunSteadyStateOnce(g *topology.Graph, cache *topology.ReachCache, cfg SteadyStateConfig, rng *stats.RNG) SteadyStateResult {
	if cfg.Sessions < 1 {
		panic("sim: SteadyStateConfig.Sessions must be >= 1")
	}
	repairPasses := cfg.RepairPasses
	if repairPasses == 0 {
		repairPasses = 20
	}
	w := &World{Graph: g, Cache: cache}
	load := cfg.workload(g)

	// Step 1: populate without regard for clashes (addresses via the
	// algorithm, which may clash invisibly).
	for i := 0; i < cfg.Sessions; i++ {
		origin, ttl := load.New(rng)
		addr, err := cfg.Alloc.Allocate(w.VisibleAt(origin), ttl, rng)
		if err != nil {
			return SteadyStateResult{Exhausted: true}
		}
		w.Add(origin, ttl, addr)
	}

	// Step 2: repair until clash-free.
	repaired := false
	for pass := 0; pass < repairPasses; pass++ {
		dirty := false
		for i := range w.Sessions {
			if w.clashIndex(i) < 0 {
				continue
			}
			dirty = true
			s := &w.Sessions[i]
			addr, err := cfg.Alloc.Allocate(w.VisibleAt(s.Origin), s.TTL, rng)
			if err != nil {
				return SteadyStateResult{Exhausted: true}
			}
			s.Addr = addr
		}
		if !dirty {
			repaired = true
			break
		}
	}
	if !repaired {
		// Could not reach a clash-free steady state: the space is
		// effectively over-committed at this n.
		return SteadyStateResult{Clashes: cfg.Sessions, RepairOK: false}
	}

	// Step 3: churn.
	clashes := 0
	for i := 0; i < cfg.Sessions; i++ {
		victim := rng.IntN(len(w.Sessions))
		departed := w.Sessions[victim]
		w.RemoveAt(victim)
		origin, ttl := load.Replace(departed, rng)
		addr, err := cfg.Alloc.Allocate(w.VisibleAt(origin), ttl, rng)
		if err != nil {
			return SteadyStateResult{Clashes: clashes, RepairOK: true, Exhausted: true}
		}
		if w.Clashes(origin, ttl, addr) {
			clashes++
		}
		w.Add(origin, ttl, addr)
	}
	return SteadyStateResult{Clashes: clashes, RepairOK: true}
}

// ClashProbability estimates P(≥1 clash during n replacements) over reps
// repetitions. Repetitions run in parallel across cfg.Workers goroutines
// sharing the scope cache; the estimate is deterministic for a fixed rng
// state regardless of worker count.
func ClashProbability(g *topology.Graph, cache *topology.ReachCache, cfg SteadyStateConfig, reps int, rng *stats.RNG) float64 {
	if reps < 1 {
		reps = 1
	}
	// Pre-split per-rep RNGs in submission order (identical to the streams
	// a serial loop would draw, since the parent advances only via Split).
	rngs := make([]*stats.RNG, reps)
	for r := range rngs {
		rngs[r] = rng.Split()
	}
	results := make([]SteadyStateResult, reps)
	par.For(cfg.Workers, reps, func(r int) {
		results[r] = RunSteadyStateOnce(g, cache, cfg, rngs[r])
	})
	hits := 0
	for _, res := range results {
		if res.Clashes > 0 || res.Exhausted {
			hits++
		}
	}
	return float64(hits) / float64(reps)
}

// Fig12Point is one datum of the Figure-12/13 curves: the largest session
// population an algorithm sustains at ≤50% clash probability for a given
// address space size.
type Fig12Point struct {
	Algorithm  string
	SpaceSize  uint32
	MaxAllocs  int
	UpperBound bool
}

// Fig12Config drives a Figure-12 (or, with UpperBound, Figure-13) sweep.
type Fig12Config struct {
	Graph      *topology.Graph
	SpaceSizes []uint32
	MakeAlloc  func(size uint32) allocator.Allocator
	Dist       mcast.TTLDistribution
	Reps       int // repetitions per probe (paper: 100)
	UpperBound bool
	// Workload optionally overrides the churn process (see SteadyStateConfig).
	Workload Workload
	Seed     uint64
	// Workers is the engine concurrency for the probe repetitions
	// (see SteadyStateConfig.Workers).
	Workers int
}

// RunFig12 finds, for each space size, the acceptability threshold of §2.6:
// the largest n for which the clash probability during one mean session
// lifetime stays at or below 0.5. The probe sequence mirrors the paper's
// table-plus-median-filter: geometric sweep over n, a 3-point median
// filter over the probability estimates, then the last n below the 0.5
// crossing.
func RunFig12(cfg Fig12Config) []Fig12Point {
	if cfg.Reps < 1 {
		cfg.Reps = 20
	}
	root := stats.NewRNG(cfg.Seed)
	cache := topology.NewReachCache(cfg.Graph)
	var out []Fig12Point
	for _, size := range cfg.SpaceSizes {
		al := cfg.MakeAlloc(size)
		// Geometric probe grid: 8 points per factor of 2 up to the space
		// size (no algorithm can sustain more sessions than addresses
		// without clashing somewhere).
		var grid []int
		for n := 4; n <= int(size); n = n*5/4 + 1 {
			grid = append(grid, n)
		}
		probs := make([]float64, len(grid))
		for i, n := range grid {
			probs[i] = ClashProbability(cfg.Graph, cache, SteadyStateConfig{
				Alloc:      al,
				Dist:       cfg.Dist,
				Sessions:   n,
				UpperBound: cfg.UpperBound,
				Workload:   cfg.Workload,
				Workers:    cfg.Workers,
			}, cfg.Reps, root.Split())
		}
		smoothed := stats.MedianFilter(probs, 3)
		best := 0
		for i, n := range grid {
			if smoothed[i] <= 0.5 {
				best = n
			} else if smoothed[i] > 0.5 && best > 0 {
				break
			}
		}
		out = append(out, Fig12Point{
			Algorithm:  al.Name(),
			SpaceSize:  size,
			MaxAllocs:  best,
			UpperBound: cfg.UpperBound,
		})
	}
	return out
}

// String renders a point as a table row.
func (p Fig12Point) String() string {
	tag := "fig12"
	if p.UpperBound {
		tag = "fig13"
	}
	return fmt.Sprintf("%s %-18s space=%-6d max_allocs=%d", tag, p.Algorithm, p.SpaceSize, p.MaxAllocs)
}
