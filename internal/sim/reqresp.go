package sim

import (
	"fmt"
	"sort"

	"sessiondir/internal/clash"
	"sessiondir/internal/stats"
	"sessiondir/internal/topology"
)

// TreeMode selects the multicast routing model for the request–response
// simulation (§3 compares both).
type TreeMode int

const (
	// SharedTree routes all traffic over one core-rooted tree (CBT /
	// sparse-mode PIM).
	SharedTree TreeMode = iota
	// ShortestPathTree routes each sender's traffic over its own
	// shortest-path tree (DVMRP / dense-mode PIM).
	ShortestPathTree
)

// String implements fmt.Stringer.
func (m TreeMode) String() string {
	if m == SharedTree {
		return "shared"
	}
	return "spt"
}

// ReqRespConfig parameterises one request–response run: a requester
// multicasts a request (a clash report solicitation); each group member
// draws a random delay; a member sends its response unless it heard
// another response first.
type ReqRespConfig struct {
	Graph *topology.Graph
	Mode  TreeMode
	// Core is the shared-tree core; ignored for ShortestPathTree. Node 0
	// (the first, most central node of a Doar graph) is the natural choice.
	Core topology.NodeID
	// Requester originates the request.
	Requester topology.NodeID
	// Members are the potential responders (excluding the requester).
	Members []topology.NodeID
	// Delay is the response-delay distribution ([D1, D2] window).
	Delay clash.DelayDist
	// DelayFor, when set, overrides Delay per member — used for the §3.1
	// strategies where announcers respond in an early tier or sites are
	// ranked. A nil return falls back to Delay.
	DelayFor func(node topology.NodeID) clash.DelayDist
	// JitterPerHop adds a uniform [0, J) ms per traversed hop to every
	// packet, modelling queueing (§3's "random per-hop amount on a
	// per-packet basis").
	JitterPerHop float64
	// MaxExactSenders bounds the number of per-sender shortest-path
	// computations in ShortestPathTree mode; past it, pair delays fall
	// back to shared-tree distances (the paper found the two differ only
	// marginally). 0 means 256.
	MaxExactSenders int
}

// ReqRespResult summarises one run.
type ReqRespResult struct {
	Responses        int     // responses actually sent
	FirstSendAt      float64 // ms: earliest response transmission
	FirstArrivalAt   float64 // ms: earliest response arrival at the requester
	MeanResponseRecv float64 // ms: mean arrival time of sent responses at the requester
}

// delayModel abstracts pairwise delivery delay for a run.
type delayModel struct {
	g        *topology.Graph
	mode     TreeMode
	shared   *topology.Tree
	spts     map[topology.NodeID]*topology.Tree
	maxExact int
	jitter   float64
	rng      *stats.RNG
}

func newDelayModel(cfg *ReqRespConfig, rng *stats.RNG) *delayModel {
	m := &delayModel{
		g:        cfg.Graph,
		mode:     cfg.Mode,
		spts:     make(map[topology.NodeID]*topology.Tree),
		maxExact: cfg.MaxExactSenders,
		jitter:   cfg.JitterPerHop,
		rng:      rng,
	}
	if m.maxExact == 0 {
		m.maxExact = 256
	}
	m.shared = topology.NewSharedTree(cfg.Graph, cfg.Core)
	return m
}

// base returns the jitter-free delay and hop count from src to dst.
func (m *delayModel) base(src, dst topology.NodeID) (float64, int32) {
	if src == dst {
		return 0, 0
	}
	if m.mode == SharedTree {
		return m.shared.TreeDelay(src, dst), m.shared.TreeHops(src, dst)
	}
	if t, ok := m.spts[src]; ok {
		return t.DelayFromRoot(dst), t.Depth(dst)
	}
	if len(m.spts) < m.maxExact {
		t := topology.NewSPTree(m.g, src)
		m.spts[src] = t
		return t.DelayFromRoot(dst), t.Depth(dst)
	}
	// Fallback: shared-tree distance approximates the SPT distance on
	// these largely tree-like topologies.
	return m.shared.TreeDelay(src, dst), m.shared.TreeHops(src, dst)
}

// packetDelay returns one packet's delivery delay src→dst including
// per-hop jitter (fresh per packet).
func (m *delayModel) packetDelay(src, dst topology.NodeID) float64 {
	d, hops := m.base(src, dst)
	if m.jitter > 0 && hops > 0 {
		d += m.rng.Float64() * m.jitter * float64(hops)
	}
	return d
}

// RunReqResp simulates one request–response exchange.
func RunReqResp(cfg ReqRespConfig, rng *stats.RNG) ReqRespResult {
	if cfg.Graph == nil || cfg.Delay == nil {
		panic("sim: ReqRespConfig.Graph and Delay are required")
	}
	model := newDelayModel(&cfg, rng)

	type member struct {
		node   topology.NodeID
		sendAt float64
	}
	members := make([]member, 0, len(cfg.Members))
	for _, node := range cfg.Members {
		if node == cfg.Requester {
			continue
		}
		recvAt := model.packetDelay(cfg.Requester, node)
		delay := cfg.Delay
		if cfg.DelayFor != nil {
			if d := cfg.DelayFor(node); d != nil {
				delay = d
			}
		}
		members = append(members, member{
			node:   node,
			sendAt: recvAt + delay.Sample(rng),
		})
	}
	sort.Slice(members, func(i, j int) bool {
		if members[i].sendAt != members[j].sendAt {
			return members[i].sendAt < members[j].sendAt
		}
		return members[i].node < members[j].node
	})

	type sender struct {
		node   topology.NodeID
		sentAt float64
	}
	var senders []sender
	res := ReqRespResult{FirstSendAt: -1, FirstArrivalAt: -1}
	var recvSum float64

	// An upper bound on any pair delay: twice the deepest root delay on the
	// shared tree (tree paths concatenate two root paths), doubled again as
	// slack for shortest-path-tree delays and per-hop jitter. Any member
	// whose send time is this far past the first response is certainly
	// suppressed — no pair computation needed.
	var maxRootDelay float64
	var maxDepth int32
	for v := 0; v < cfg.Graph.NumNodes(); v++ {
		if d := model.shared.DelayFromRoot(topology.NodeID(v)); d > maxRootDelay {
			maxRootDelay = d
		}
		if h := model.shared.Depth(topology.NodeID(v)); h > maxDepth {
			maxDepth = h
		}
	}
	sureSuppressDelay := 4*maxRootDelay + cfg.JitterPerHop*float64(4*maxDepth)

	// Exact suppression checks are bounded: the earliest senders have the
	// most slack, so checking them first makes the bound a very mild
	// approximation that only engages deep in the implosion regime.
	const maxExactChecks = 2048

	for _, mb := range members {
		suppressed := false
		if len(senders) > 0 && mb.sendAt >= senders[0].sentAt+sureSuppressDelay {
			suppressed = true
		} else {
			checks := len(senders)
			if checks > maxExactChecks {
				checks = maxExactChecks
			}
			for _, sd := range senders[:checks] {
				// An earlier response that arrives before (or exactly at)
				// our send time cancels it.
				if sd.sentAt+model.packetDelay(sd.node, mb.node) <= mb.sendAt {
					suppressed = true
					break
				}
			}
		}
		if suppressed {
			continue
		}
		senders = append(senders, sender{node: mb.node, sentAt: mb.sendAt})
		arrival := mb.sendAt + model.packetDelay(mb.node, cfg.Requester)
		recvSum += arrival
		if res.FirstSendAt < 0 || mb.sendAt < res.FirstSendAt {
			res.FirstSendAt = mb.sendAt
		}
		if res.FirstArrivalAt < 0 || arrival < res.FirstArrivalAt {
			res.FirstArrivalAt = arrival
		}
	}
	res.Responses = len(senders)
	if res.Responses > 0 {
		res.MeanResponseRecv = recvSum / float64(res.Responses)
	}
	return res
}

// Fig15Point is one datum of the Figures-15/16/19 surfaces.
type Fig15Point struct {
	Mode          TreeMode
	Jitter        bool
	DelayName     string
	D2Millis      float64
	GroupSize     int
	MeanResponses float64
	MeanFirstMs   float64 // mean delay of first response arrival
	MaxFirstMs    float64
	Trials        int
}

// String renders a point as a table row.
func (p Fig15Point) String() string {
	return fmt.Sprintf("%-6s jitter=%-5v %-11s D2=%-9.0f n=%-6d responses=%8.2f first=%8.1fms max=%8.1fms",
		p.Mode, p.Jitter, p.DelayName, p.D2Millis, p.GroupSize, p.MeanResponses, p.MeanFirstMs, p.MaxFirstMs)
}

// Fig15Config drives the request–response sweeps.
type Fig15Config struct {
	// Graphs maps group size → topology (the group is all nodes).
	GroupSizes []int
	D2Millis   []float64
	D1Millis   float64
	Mode       TreeMode
	Jitter     bool    // per-hop queueing jitter on/off
	JitterMs   float64 // per-hop jitter bound; 0 means 2 ms
	Exp        bool    // exponential (Fig 18/19) vs uniform delay
	RTTMillis  float64 // r for the exponential distribution
	Trials     int
	Seed       uint64
}

// RunFig15 generates Doar topologies of each requested size and sweeps the
// D2 window, reporting mean response counts and first-response delays.
func RunFig15(cfg Fig15Config) ([]Fig15Point, error) {
	if cfg.Trials < 1 {
		cfg.Trials = 3
	}
	if cfg.RTTMillis <= 0 {
		cfg.RTTMillis = 200
	}
	if cfg.JitterMs <= 0 {
		cfg.JitterMs = 2
	}
	root := stats.NewRNG(cfg.Seed)
	var out []Fig15Point
	for _, size := range cfg.GroupSizes {
		g, err := topology.GenerateGrid(topology.GridConfig{
			Nodes:          size,
			RedundantLinks: true,
		}, root.Split())
		if err != nil {
			return nil, err
		}
		members := make([]topology.NodeID, g.NumNodes())
		for i := range members {
			members[i] = topology.NodeID(i)
		}
		for _, d2 := range cfg.D2Millis {
			var delay clash.DelayDist
			if cfg.Exp {
				delay = clash.NewExponentialDelay(cfg.D1Millis, d2, cfg.RTTMillis)
			} else {
				delay = clash.NewUniformDelay(cfg.D1Millis, d2)
			}
			var responses, first stats.Summary
			maxFirst := 0.0
			for trial := 0; trial < cfg.Trials; trial++ {
				rng := root.Split()
				jit := 0.0
				if cfg.Jitter {
					jit = cfg.JitterMs
				}
				r := RunReqResp(ReqRespConfig{
					Graph:        g,
					Mode:         cfg.Mode,
					Core:         0,
					Requester:    topology.NodeID(rng.IntN(g.NumNodes())),
					Members:      members,
					Delay:        delay,
					JitterPerHop: jit,
				}, rng)
				responses.Add(float64(r.Responses))
				if r.FirstArrivalAt >= 0 {
					first.Add(r.FirstArrivalAt)
					if r.FirstArrivalAt > maxFirst {
						maxFirst = r.FirstArrivalAt
					}
				}
			}
			out = append(out, Fig15Point{
				Mode:          cfg.Mode,
				Jitter:        cfg.Jitter,
				DelayName:     delay.Name(),
				D2Millis:      d2,
				GroupSize:     size,
				MeanResponses: responses.Mean(),
				MeanFirstMs:   first.Mean(),
				MaxFirstMs:    maxFirst,
				Trials:        cfg.Trials,
			})
		}
	}
	return out, nil
}
