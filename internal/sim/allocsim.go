// Package sim contains the paper's simulations: address-space fill-up over
// the Mbone topology (Figure 5), the steady-state churn experiments for
// the adaptive allocators (Figures 12 and 13), and the multicast
// request–response suppression protocol (Figures 15, 16 and 19).
//
// The allocation simulations use the same abstraction the paper does: the
// announcement machinery is reduced to *visibility* — a site sees exactly
// the sessions whose scope set contains it (no loss, no delay; §2.2 notes
// this flatters the informed schemes, which is the point of comparison),
// while scoping itself is computed exactly over the topology's TTL
// thresholds and DVMRP routes.
package sim

import (
	"fmt"

	"sessiondir/internal/allocator"
	"sessiondir/internal/mcast"
	"sessiondir/internal/par"
	"sessiondir/internal/stats"
	"sessiondir/internal/topology"
)

// Session is one live simulated session.
type Session struct {
	Origin topology.NodeID
	TTL    mcast.TTL
	Addr   mcast.Addr
	reach  *topology.NodeSet
}

// World is the state of one allocation simulation: the topology, the scope
// cache and the live session set. A World belongs to a single trial (one
// goroutine); the ReachCache it references may be shared across many
// concurrent worlds.
type World struct {
	Graph    *topology.Graph
	Cache    *topology.ReachCache
	Sessions []Session
	// visScratch backs VisibleAt so the per-allocation hot path does not
	// allocate O(sessions) per step.
	visScratch []allocator.SessionInfo
}

// NewWorld returns an empty world over g with its own private scope cache.
func NewWorld(g *topology.Graph) *World {
	return NewWorldWithCache(g, topology.NewReachCache(g))
}

// NewWorldWithCache returns an empty world over g backed by a shared scope
// cache — the form the parallel experiment engine uses, so every trial of
// a sweep reuses one cache's trees and reach sets instead of recomputing
// them per trial.
func NewWorldWithCache(g *topology.Graph, cache *topology.ReachCache) *World {
	return &World{Graph: g, Cache: cache}
}

// VisibleAt returns the sessions whose announcements reach the observer,
// in allocator form. The returned slice is backed by a per-world scratch
// buffer: it is valid until the next VisibleAt call on this world and must
// not be retained (the Allocator contract already forbids retention).
func (w *World) VisibleAt(observer topology.NodeID) []allocator.SessionInfo {
	out := w.visScratch[:0]
	for i := range w.Sessions {
		if w.Sessions[i].reach.Contains(observer) {
			out = append(out, allocator.SessionInfo{
				Addr: w.Sessions[i].Addr,
				TTL:  w.Sessions[i].TTL,
			})
		}
	}
	w.visScratch = out
	return out
}

// Clashes reports whether a session at (origin, ttl, addr) clashes with
// any live session: same address and intersecting scope sets, so that
// somewhere in the network both sessions' data would arrive on one group.
func (w *World) Clashes(origin topology.NodeID, ttl mcast.TTL, addr mcast.Addr) bool {
	reach := w.Cache.Reach(origin, ttl)
	for i := range w.Sessions {
		if w.Sessions[i].Addr == addr && w.Sessions[i].reach.Intersects(reach) {
			return true
		}
	}
	return false
}

// clashesAt returns the index of a live session clashing with session i,
// or -1.
func (w *World) clashIndex(i int) int {
	s := &w.Sessions[i]
	for j := range w.Sessions {
		if j == i {
			continue
		}
		if w.Sessions[j].Addr == s.Addr && w.Sessions[j].reach.Intersects(s.reach) {
			return j
		}
	}
	return -1
}

// Add appends a session.
func (w *World) Add(origin topology.NodeID, ttl mcast.TTL, addr mcast.Addr) {
	w.Sessions = append(w.Sessions, Session{
		Origin: origin,
		TTL:    ttl,
		Addr:   addr,
		reach:  w.Cache.Reach(origin, ttl),
	})
}

// RemoveAt deletes session i (order not preserved).
func (w *World) RemoveAt(i int) {
	last := len(w.Sessions) - 1
	w.Sessions[i] = w.Sessions[last]
	w.Sessions = w.Sessions[:last]
}

// FillConfig parameterises a Figure-5 fill-until-clash run.
type FillConfig struct {
	Alloc allocator.Allocator
	Dist  mcast.TTLDistribution
	// MaxSessions caps a run (0 = space size × 4, ample for any algorithm).
	MaxSessions int
}

// FillResult is the outcome of one fill-until-clash run.
type FillResult struct {
	Allocations int  // sessions allocated before the first clash
	SpaceFull   bool // the run ended by exhausting the space, not a clash
}

// FillUntilClash allocates sessions one at a time — random origin, TTL from
// the workload distribution, address from the allocator under test given
// the origin's view — until the first address clash, and returns how many
// succeeded. This is the paper's Figure-5 experiment.
func FillUntilClash(w *World, cfg FillConfig, rng *stats.RNG) FillResult {
	if cfg.Alloc == nil {
		panic("sim: FillConfig.Alloc is required")
	}
	maxSessions := cfg.MaxSessions
	if maxSessions == 0 {
		maxSessions = int(cfg.Alloc.Size()) * 4
	}
	n := w.Graph.NumNodes()
	for count := 0; count < maxSessions; count++ {
		origin := topology.NodeID(rng.IntN(n))
		ttl := cfg.Dist.Sample(rng.IntN)
		visible := w.VisibleAt(origin)
		addr, err := cfg.Alloc.Allocate(visible, ttl, rng)
		if err != nil {
			return FillResult{Allocations: count, SpaceFull: true}
		}
		if w.Clashes(origin, ttl, addr) {
			return FillResult{Allocations: count}
		}
		w.Add(origin, ttl, addr)
	}
	return FillResult{Allocations: maxSessions, SpaceFull: true}
}

// Fig5Point is one datum of the Figure-5 curves.
type Fig5Point struct {
	Algorithm    string
	Dist         string
	SpaceSize    uint32
	MeanAllocs   float64
	StdErr       float64
	Trials       int
	SpaceFullPct float64 // fraction of trials ending in exhaustion
}

// Fig5Config drives a Figure-5 sweep.
type Fig5Config struct {
	Graph      *topology.Graph
	SpaceSizes []uint32
	Dists      []mcast.TTLDistribution
	// MakeAlloc builds the allocator under test for a space size. It must
	// be deterministic (same size → equivalent allocator) and cheap; the
	// parallel engine may call it once per trial.
	MakeAlloc func(size uint32) allocator.Allocator
	Trials    int
	Seed      uint64
	// Workers caps the engine's concurrency: 0 means GOMAXPROCS, 1 forces
	// the serial path. Results are bit-identical for every worker count —
	// trial RNGs are pre-split in submission order and aggregated by index.
	Workers int
}

// RunFig5 sweeps space sizes × distributions for one algorithm, averaging
// allocations-before-clash over trials. Trials run in parallel across
// Workers goroutines sharing one scope cache; output is deterministic for
// a fixed Seed regardless of worker count.
func RunFig5(cfg Fig5Config) []Fig5Point {
	if cfg.Trials < 1 {
		cfg.Trials = 1
	}
	// Pre-split one RNG per trial in the exact order the serial
	// size→dist→trial loop would split them: the parent RNG is advanced
	// only by Split, so the pre-split streams are identical to serial ones.
	type trialTask struct {
		size uint32
		dist mcast.TTLDistribution
		rng  *stats.RNG
	}
	root := stats.NewRNG(cfg.Seed)
	tasks := make([]trialTask, 0, len(cfg.SpaceSizes)*len(cfg.Dists)*cfg.Trials)
	for _, size := range cfg.SpaceSizes {
		for _, dist := range cfg.Dists {
			for trial := 0; trial < cfg.Trials; trial++ {
				tasks = append(tasks, trialTask{size: size, dist: dist, rng: root.Split()})
			}
		}
	}
	cache := topology.NewReachCache(cfg.Graph)
	results := make([]FillResult, len(tasks))
	par.For(cfg.Workers, len(tasks), func(i int) {
		t := tasks[i]
		w := NewWorldWithCache(cfg.Graph, cache)
		al := cfg.MakeAlloc(t.size)
		results[i] = FillUntilClash(w, FillConfig{Alloc: al, Dist: t.dist}, t.rng)
	})
	// Fold per-trial results in submission order, so summary statistics
	// accumulate floats in the same order as a serial run.
	var out []Fig5Point
	i := 0
	for _, size := range cfg.SpaceSizes {
		name := cfg.MakeAlloc(size).Name()
		for _, dist := range cfg.Dists {
			var s stats.Summary
			full := 0
			for trial := 0; trial < cfg.Trials; trial++ {
				res := results[i]
				i++
				s.Add(float64(res.Allocations))
				if res.SpaceFull {
					full++
				}
			}
			out = append(out, Fig5Point{
				Algorithm:    name,
				Dist:         dist.Name,
				SpaceSize:    size,
				MeanAllocs:   s.Mean(),
				StdErr:       s.StdErr(),
				Trials:       cfg.Trials,
				SpaceFullPct: float64(full) / float64(cfg.Trials),
			})
		}
	}
	return out
}

// String renders a point as a table row.
func (p Fig5Point) String() string {
	return fmt.Sprintf("%-18s %-4s space=%-6d mean=%8.1f ±%.1f (n=%d, full=%.0f%%)",
		p.Algorithm, p.Dist, p.SpaceSize, p.MeanAllocs, p.StdErr, p.Trials, p.SpaceFullPct*100)
}
