package sim

import (
	"testing"

	"sessiondir/internal/clash"
	"sessiondir/internal/stats"
	"sessiondir/internal/topology"
)

// TestReqRespLargeGroup exercises the paper-scale path: a 12800-node Doar
// graph under both delay distributions, including the implosion regime the
// bounded-suppression optimisations exist for. Guards the `-full` runs.
func TestReqRespLargeGroup(t *testing.T) {
	if testing.Short() {
		t.Skip("large-group request-response")
	}
	g, err := topology.GenerateGrid(topology.GridConfig{Nodes: 12800, RedundantLinks: true}, stats.NewRNG(31))
	if err != nil {
		t.Fatal(err)
	}
	members := allNodes(g)
	rng := stats.NewRNG(32)

	// Exponential, comfortable window: a handful of responses.
	r := RunReqResp(ReqRespConfig{
		Graph:     g,
		Mode:      SharedTree,
		Requester: 7,
		Members:   members,
		Delay:     clash.NewExponentialDelay(0, 3200, 200),
	}, rng.Split())
	if r.Responses < 1 || r.Responses > 30 {
		t.Fatalf("exponential responses = %d", r.Responses)
	}

	// Uniform, tiny window: implosion regime — thousands respond, and the
	// run must complete quickly despite O(n²)-shaped naive cost.
	r = RunReqResp(ReqRespConfig{
		Graph:     g,
		Mode:      SharedTree,
		Requester: 7,
		Members:   members,
		Delay:     clash.NewUniformDelay(0, 50),
	}, rng.Split())
	if r.Responses < 200 {
		t.Fatalf("implosion regime produced only %d responses", r.Responses)
	}
}
