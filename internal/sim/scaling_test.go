package sim

import (
	"testing"

	"sessiondir/internal/allocator"
	"sessiondir/internal/mcast"
	"sessiondir/internal/stats"
)

// TestFig5ScalingExponents asserts the paper's headline Figure-5 claim as
// fitted power-law exponents over the space-size sweep:
//
//	R (and IR) achieve a mean allocation of O(√n) before a clash;
//	IPR 7-band achieves an optimal mean allocation of O(n).
func TestFig5ScalingExponents(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling sweep is slow")
	}
	g := testMbone(t, 600)
	spaces := []uint32{64, 128, 256, 512, 1024}
	trials := 24

	exponent := func(mk func(size uint32) allocator.Allocator) float64 {
		pts := RunFig5(Fig5Config{
			Graph:      g,
			SpaceSizes: spaces,
			Dists:      []mcast.TTLDistribution{mcast.DS4()},
			MakeAlloc:  mk,
			Trials:     trials,
			Seed:       99,
		})
		xs := make([]float64, len(pts))
		ys := make([]float64, len(pts))
		for i, p := range pts {
			xs[i] = float64(p.SpaceSize)
			ys[i] = p.MeanAllocs
		}
		b, _, err := stats.PowerLawFit(xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	bR := exponent(func(size uint32) allocator.Allocator { return allocator.NewRandom(size) })
	bIPR7 := exponent(func(size uint32) allocator.Allocator {
		return allocator.NewStaticPartitioned(size, allocator.IPR7Separators())
	})

	// The birthday regime: exponent near 1/2 (scoped reuse pushes it a bit
	// above pure birthday, but far from linear).
	if bR < 0.3 || bR > 0.75 {
		t.Fatalf("R exponent %.2f, want ≈0.5", bR)
	}
	// Perfect partitioning: near-linear scaling.
	if bIPR7 < 0.85 || bIPR7 > 1.15 {
		t.Fatalf("IPR7 exponent %.2f, want ≈1.0", bIPR7)
	}
	if bIPR7-bR < 0.25 {
		t.Fatalf("exponent separation too small: R=%.2f IPR7=%.2f", bR, bIPR7)
	}
}
