package sim

import (
	"reflect"
	"testing"

	"sessiondir/internal/allocator"
	"sessiondir/internal/mcast"
	"sessiondir/internal/stats"
	"sessiondir/internal/topology"
)

// serialOccupancy is the unpartitioned oracle: the exact RunOccupancy
// workload driven through the plain serial World. RunOccupancy must
// reproduce it bit-for-bit at every partition and worker count.
func serialOccupancy(cfg OccupancyConfig) OccupancyResult {
	if cfg.Churn == 0 {
		cfg.Churn = cfg.Sessions / 10
	}
	rng := stats.NewRNG(cfg.Seed)
	w := NewWorld(cfg.Graph)
	n := cfg.Graph.NumNodes()
	res := OccupancyResult{
		Algorithm:  cfg.Alloc.Name(),
		Sessions:   cfg.Sessions,
		SpaceSize:  cfg.Alloc.Size(),
		Partitions: cfg.Partitions,
	}
	place := func(clashes *int) {
		origin := topology.NodeID(rng.IntN(n))
		ttl := cfg.Dist.Sample(rng.IntN)
		visible := w.VisibleAt(origin)
		addr, err := cfg.Alloc.Allocate(visible, ttl, rng)
		if err != nil {
			res.Exhausted++
			return
		}
		if w.Clashes(origin, ttl, addr) {
			*clashes++
		}
		w.Add(origin, ttl, addr)
	}
	for k := 0; k < cfg.Sessions; k++ {
		place(&res.FillClashes)
	}
	res.Placed = len(w.Sessions)
	res.Occupancy = float64(len(w.Sessions)) / float64(cfg.Alloc.Size())
	for j := 0; j < cfg.Churn && len(w.Sessions) > 0; j++ {
		w.RemoveAt(rng.IntN(len(w.Sessions)))
		place(&res.ChurnClashes)
	}
	return res
}

func occupancyTestGraph(t *testing.T) *topology.Graph {
	t.Helper()
	g, err := topology.GenerateMbone(topology.MboneConfig{Nodes: 150}, stats.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// The acceptance criterion for the simulation core: occupancy runs are
// bit-identical to the serial oracle at partition counts 1, 4 and 8 and
// at any worker count.
func TestRunOccupancyMatchesSerialOracle(t *testing.T) {
	g := occupancyTestGraph(t)
	for _, mk := range []func() allocator.Allocator{
		func() allocator.Allocator { return allocator.NewInformedRandom(600) },
		func() allocator.Allocator { return allocator.NewHybrid(600) },
	} {
		base := OccupancyConfig{
			Graph:    g,
			Dist:     mcast.DS4(),
			Sessions: 400,
			Churn:    120,
			Seed:     1998,
		}
		cfg := base
		cfg.Alloc = mk()
		cfg.Partitions = 1
		want := serialOccupancy(cfg)
		for _, parts := range []int{1, 4, 8} {
			for _, workers := range []int{1, 4, 0} {
				cfg := base
				cfg.Alloc = mk() // fresh allocator: some keep internal RNG-free state
				cfg.Partitions = parts
				cfg.Workers = workers
				got := RunOccupancy(cfg)
				got.Partitions = want.Partitions // the only field allowed to differ
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s parts=%d workers=%d diverges from serial oracle:\n got  %+v\n want %+v",
						want.Algorithm, parts, workers, got, want)
				}
			}
		}
	}
}

// The partitioned world's order index must mirror the serial world's
// session slice through an arbitrary add/remove interleaving — that
// equivalence is what makes RNG-drawn victim indices partition-count
// independent.
func TestPartitionedWorldMirrorsSerialOrder(t *testing.T) {
	g := occupancyTestGraph(t)
	cache := topology.NewReachCache(g)
	serial := NewWorldWithCache(g, cache)
	part := NewPartitionedWorld(g, cache, 5, 1)
	rng := stats.NewRNG(42)
	n := g.NumNodes()

	check := func(step int) {
		if part.Len() != len(serial.Sessions) {
			t.Fatalf("step %d: len %d != serial %d", step, part.Len(), len(serial.Sessions))
		}
		for k := range serial.Sessions {
			h := part.order[k]
			got := part.parts[h.part][h.idx]
			want := serial.Sessions[k]
			if got.Origin != want.Origin || got.TTL != want.TTL || got.Addr != want.Addr {
				t.Fatalf("step %d: order[%d] = %+v, serial holds %+v", step, k, got, want)
			}
		}
	}
	for step := 0; step < 2000; step++ {
		if len(serial.Sessions) > 0 && rng.IntN(3) == 0 {
			k := rng.IntN(len(serial.Sessions))
			serial.RemoveAt(k)
			part.RemoveAt(k)
		} else {
			origin := topology.NodeID(rng.IntN(n))
			ttl := mcast.TTL(rng.IntN(256))
			addr := mcast.Addr(rng.IntN(1000))
			serial.Add(origin, ttl, addr)
			part.Add(origin, ttl, addr)
		}
		check(step)
	}
	// Drain completely: the removal path must hold up to empty.
	for part.Len() > 0 {
		k := rng.IntN(part.Len())
		serial.RemoveAt(k)
		part.RemoveAt(k)
		check(-1)
	}
}

// VisibleAt's partition-order merge must be a permutation of the serial
// scan carrying exactly the same multiset of (addr, ttl) pairs.
func TestPartitionedVisibleAtMatchesSerialSet(t *testing.T) {
	g := occupancyTestGraph(t)
	cache := topology.NewReachCache(g)
	serial := NewWorldWithCache(g, cache)
	part := NewPartitionedWorld(g, cache, 4, 0)
	rng := stats.NewRNG(7)
	n := g.NumNodes()
	for i := 0; i < 500; i++ {
		origin := topology.NodeID(rng.IntN(n))
		ttl := mcast.TTL(16 + rng.IntN(200))
		addr := mcast.Addr(rng.IntN(300))
		serial.Add(origin, ttl, addr)
		part.Add(origin, ttl, addr)
	}
	count := func(view []allocator.SessionInfo) map[allocator.SessionInfo]int {
		m := make(map[allocator.SessionInfo]int, len(view))
		for _, s := range view {
			m[s]++
		}
		return m
	}
	for obs := 0; obs < n; obs += 17 {
		want := count(serial.VisibleAt(topology.NodeID(obs)))
		got := count(part.VisibleAt(topology.NodeID(obs)))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("observer %d: visible multiset diverges", obs)
		}
	}
}
