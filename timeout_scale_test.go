package sessiondir_test

// Shared timeout scaling for the end-to-end tests that race real wall
// clocks (UDP sockets, spawned daemons). Their constants are tuned for a
// lightly loaded developer machine; saturated CI runners can set
// CI_TIMEOUT_SCALE (e.g. 3 or 0.5) to stretch or shrink every e2e
// deadline together instead of editing constants one flake at a time.

import (
	"os"
	"strconv"
	"time"
)

// timeoutScale is CI_TIMEOUT_SCALE parsed once; unset, empty, or
// non-positive values mean 1.
var timeoutScale = func() float64 {
	v := os.Getenv("CI_TIMEOUT_SCALE")
	if v == "" {
		return 1
	}
	s, err := strconv.ParseFloat(v, 64)
	if err != nil || s <= 0 {
		return 1
	}
	return s
}()

// scaled stretches an e2e deadline by CI_TIMEOUT_SCALE.
func scaled(d time.Duration) time.Duration {
	return time.Duration(float64(d) * timeoutScale)
}
