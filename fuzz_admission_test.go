package sessiondir

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"sessiondir/internal/mcast"
	"sessiondir/internal/sap"
	"sessiondir/internal/session"
	"sessiondir/internal/transport"
)

// FuzzAdmission drives the full receive path — rate limit, validation,
// budget — with attacker-shaped traffic from one hostile origin: raw
// fuzz bytes on the wire, plus announce/delete/clash-report sequences
// whose shape (session IDs, versions, groups, deletions, clock skips)
// is decoded from the fuzz input. Invariants: no panic, the cache never
// exceeds MaxSessions, and owned sessions survive whatever arrives.
func FuzzAdmission(f *testing.F) {
	// Seeds echo the sap decode corpus plus admission-shaped scripts.
	f.Add([]byte{})
	f.Add([]byte{0x20, 0x00, 0x12, 0x34, 10, 0, 0, 1})
	f.Add([]byte{0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08})
	f.Add([]byte("v=0\r\no=- 1 1 IN IP4 10.0.0.9\r\ns=x\r\n"))
	f.Add([]byte{0xff, 0x00, 0xff, 0x10, 0x20, 0x30, 0x40, 0x50, 0x60, 0x70})

	f.Fuzz(func(t *testing.T, data []byte) {
		bus := transport.NewBus()
		clk := newFakeClock()
		dir, err := New(Config{
			Origin:       netip.MustParseAddr("10.0.0.1"),
			Transport:    bus.Endpoint(),
			Space:        mcast.SyntheticSpace(32),
			Clock:        clk.Now,
			Seed:         1,
			MaxSessions:  4,
			MaxPerOrigin: 2,
			OriginRate:   50,
			OriginBurst:  100,
			StaleAfter:   5 * time.Minute,
		})
		if err != nil {
			t.Fatal(err)
		}
		own, err := dir.CreateSession(testDesc("owned", 127))
		if err != nil {
			t.Fatal(err)
		}

		attacker := bus.Endpoint()
		hostile := netip.MustParseAddr("10.0.0.66")
		space := mcast.SyntheticSpace(32)

		for i := 0; i+2 < len(data); i += 3 {
			op, a, b := data[i], data[i+1], data[i+2]
			switch op % 5 {
			case 0: // raw bytes: whatever the fuzzer dreamed up
				end := i + 3 + int(a)
				if end > len(data) {
					end = len(data)
				}
				_ = attacker.Send(nil, data[i:end], 127)
			case 1, 2: // announce: id/version/group from fuzz bytes
				desc := &session.Description{
					ID:      uint64(a % 8),
					Version: uint64(b % 4),
					Origin:  hostile,
					Name:    fmt.Sprintf("h%d", a),
					Group:   space.Group(mcast.Addr(b % 32)),
					TTL:     mcast.TTL(a),
					Media:   []session.Media{{Type: "audio", Port: 5004, Proto: "RTP/AVP", Format: "0"}},
				}
				sendFuzz(attacker, sap.Announce, hostile, desc)
			case 3: // delete, sometimes naming the owned session
				victim := &session.Description{
					ID:      uint64(a % 8),
					Version: 1,
					Origin:  hostile,
					Name:    "del",
					Group:   space.Group(mcast.Addr(b % 32)),
					TTL:     127,
					Media:   []session.Media{{Type: "audio", Port: 5004, Proto: "RTP/AVP", Format: "0"}},
				}
				if a%3 == 0 {
					victim = own
				}
				sendFuzz(attacker, sap.Delete, hostile, victim)
			case 4: // time passes; expiry and refill paths run
				clk.Advance(time.Duration(a) * time.Second)
				dir.Step(clk.Now())
			}
		}

		if n := dir.CacheSize(); n > 4+1 { // +1: own session tombstoneless echo
			t.Fatalf("cache grew to %d entries past budget 4", n)
		}
		if len(dir.OwnSessions()) != 1 {
			t.Fatal("hostile traffic destroyed an owned session")
		}
		for _, s := range dir.OwnSessions() {
			if s.Key() != own.Key() {
				t.Fatalf("owned session mutated: %s", s.Key())
			}
		}
	})
}

// sendFuzz marshals and sends, swallowing marshal errors — invalid
// descriptions are themselves attacker behaviour worth exercising.
func sendFuzz(ep *transport.BusEndpoint, typ sap.MessageType, origin netip.Addr, desc *session.Description) {
	payload, err := desc.MarshalSDP()
	if err != nil {
		return
	}
	pkt := sap.Packet{
		Type:      typ,
		MsgIDHash: sap.MsgIDHashOf(payload),
		Origin:    origin,
		Payload:   payload,
	}
	wire, err := pkt.Marshal(nil)
	if err != nil {
		return
	}
	_ = ep.Send(nil, wire, desc.TTL)
}
