package sessiondir_test

// Testable godoc examples for the public API.

import (
	"fmt"
	"net/netip"
	"time"

	"sessiondir"
	"sessiondir/internal/allocator"
	"sessiondir/internal/mcast"
	"sessiondir/internal/session"
	"sessiondir/internal/transport"
)

// fixedClock makes example output deterministic.
func fixedClock() time.Time {
	return time.Date(1998, 9, 1, 12, 0, 0, 0, time.UTC)
}

// ExampleNew shows the minimal wiring: one directory on an in-process bus.
func ExampleNew() {
	bus := transport.NewBus()
	dir, err := sessiondir.New(sessiondir.Config{
		Origin:    netip.MustParseAddr("10.0.0.1"),
		Transport: bus.Endpoint(),
		Clock:     fixedClock,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer dir.Close()
	fmt.Println(len(dir.Sessions()), "sessions known")
	// Output: 0 sessions known
}

// ExampleDirectory_CreateSession shows address allocation and discovery:
// the directory picks the group address; a listener learns the session.
func ExampleDirectory_CreateSession() {
	bus := transport.NewBus()
	alice, _ := sessiondir.New(sessiondir.Config{
		Origin:    netip.MustParseAddr("10.0.0.1"),
		Transport: bus.Endpoint(),
		Space:     mcast.SyntheticSpace(16),
		Allocator: allocator.NewAdaptive(16, allocator.AdaptiveConfig{GapFraction: 0.2}),
		Clock:     fixedClock,
		Seed:      1,
	})
	defer alice.Close()
	bob, _ := sessiondir.New(sessiondir.Config{
		Origin:    netip.MustParseAddr("10.0.0.2"),
		Transport: bus.Endpoint(),
		Space:     mcast.SyntheticSpace(16),
		Clock:     fixedClock,
		Seed:      2,
	})
	defer bob.Close()

	desc, err := alice.CreateSession(&session.Description{
		Name:  "Seminar",
		TTL:   127,
		Media: []session.Media{{Type: "audio", Port: 20000, Proto: "RTP/AVP", Format: "0"}},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, s := range bob.Sessions() {
		fmt.Printf("%s on %s (scope %s)\n", s.Name, s.Group, mcast.ScopeName(s.TTL))
	}
	_ = desc
	// Output: Seminar on 232.1.0.4 (scope intercontinental)
}

// ExampleDirectory_WithdrawSession shows deletion propagating to peers.
func ExampleDirectory_WithdrawSession() {
	bus := transport.NewBus()
	a, _ := sessiondir.New(sessiondir.Config{
		Origin:    netip.MustParseAddr("10.0.0.1"),
		Transport: bus.Endpoint(),
		Clock:     fixedClock,
	})
	defer a.Close()
	b, _ := sessiondir.New(sessiondir.Config{
		Origin:    netip.MustParseAddr("10.0.0.2"),
		Transport: bus.Endpoint(),
		Clock:     fixedClock,
	})
	defer b.Close()

	desc, _ := a.CreateSession(&session.Description{
		Name:  "Ephemeral",
		TTL:   15,
		Media: []session.Media{{Type: "audio", Port: 9000, Proto: "RTP/AVP", Format: "0"}},
	})
	fmt.Println("before:", len(b.Sessions()))
	if err := a.WithdrawSession(desc.Key()); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("after:", len(b.Sessions()))
	// Output:
	// before: 1
	// after: 0
}
