package sessiondir

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"sessiondir/internal/announce"
	"sessiondir/internal/obs"
	"sessiondir/internal/session"
	"sessiondir/internal/storage"
)

// CacheStore is the journaled persistence bridge between a Directory
// and internal/storage: cache mutations (learned / deleted / expired /
// evicted sessions) become journal deltas appended between checkpoints,
// and Checkpoint folds the live cache into a fresh snapshot generation.
// Steady-state persistence is therefore O(delta), not O(sessions) — the
// full-cache write happens only at the compaction cadence.
//
// Delta payloads (first byte is the kind):
//
//	'L' | firstHeardUnix (8 BE) | lastHeardUnix (8 BE) | SDP bytes
//	'D' | session key            (deletion: tombstone semantics)
//	'E' | session key            (expiry: entry dropped)
//	'V' | session key            (eviction: entry dropped)
//
// Snapshot records reuse the 'L' encoding, one per live session —
// tombstones are not persisted, matching the legacy format's contract
// (a restart may briefly resurrect a deleted session; the deletion's
// re-announcement squelches it).
type CacheStore struct {
	store  *storage.Store
	dir    *Directory
	ins    cacheStoreInstruments
	loaded int // entries restored into the cache at recovery
}

// Delta kind bytes.
const (
	deltaLearn  byte = 'L'
	deltaDelete byte = 'D'
	deltaExpire byte = 'E'
	deltaEvict  byte = 'V'
)

type cacheStoreInstruments struct {
	checkpointErrs *obs.Counter
	compactions    *obs.Counter
	appendErrs     *obs.Counter
	appended       *obs.Counter
	salvaged       *obs.Counter
	corrupt        *obs.Counter
}

func newCacheStoreInstruments(r *obs.Registry) (cacheStoreInstruments, error) {
	var ins cacheStoreInstruments
	counters := []struct {
		dst        **obs.Counter
		name, help string
	}{
		{&ins.checkpointErrs, "cache_checkpoint_errors_total", "cache checkpoint (snapshot compaction) attempts that failed"},
		{&ins.compactions, "cache_checkpoint_compactions_total", "successful cache snapshot compactions"},
		{&ins.appendErrs, "cache_journal_append_errors_total", "journal delta batches refused or failed by the store"},
		{&ins.appended, "cache_journal_records_total", "session deltas durably appended to the cache journal"},
		{&ins.salvaged, "cache_recovery_salvaged_total", "cache entries or records salvaged from damaged checkpoint files"},
		{&ins.corrupt, "cache_recovery_corrupt_total", "checkpoint files found corrupt at recovery (quarantined)"},
	}
	for _, c := range counters {
		m, err := r.Counter(c.name, c.help)
		if err != nil {
			return ins, err
		}
		*c.dst = m
	}
	return ins, nil
}

// encodeLearn frames one cache entry as a learn delta / snapshot
// record. Returns nil (skip) for descriptions that cannot marshal —
// the same tolerance the legacy format applies.
func encodeLearn(e *announce.Entry) []byte {
	sdp, err := e.Desc.MarshalSDP()
	if err != nil {
		return nil
	}
	buf := make([]byte, 0, 1+8+8+len(sdp))
	buf = append(buf, deltaLearn)
	buf = binary.BigEndian.AppendUint64(buf, uint64(e.FirstHeard.Unix()))
	buf = binary.BigEndian.AppendUint64(buf, uint64(e.LastHeard.Unix()))
	return append(buf, sdp...)
}

// encodeKeyDelta frames a delete/expire/evict delta.
func encodeKeyDelta(kind byte, key string) []byte {
	buf := make([]byte, 0, 1+len(key))
	return append(append(buf, kind), key...)
}

// applyCacheRecord replays one recovered record into the directory
// cache with Load's merge semantics, reporting whether it added a new
// entry. An undecodable record is a decode error — the store
// quarantines the rest of that file.
func (d *Directory) applyCacheRecord(p []byte) (bool, error) {
	if len(p) == 0 {
		return false, fmt.Errorf("empty cache record")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.cfg.Clock()
	switch p[0] {
	case deltaLearn:
		if len(p) < 1+8+8+1 {
			return false, fmt.Errorf("short learn record (%d bytes)", len(p))
		}
		first := int64(binary.BigEndian.Uint64(p[1:9]))
		last := int64(binary.BigEndian.Uint64(p[9:17]))
		desc, err := session.ParseSDP(p[17:])
		if err != nil {
			return false, fmt.Errorf("learn record SDP: %w", err)
		}
		return d.cache.Restore(desc, time.Unix(first, 0), time.Unix(last, 0), now), nil
	case deltaDelete:
		d.cache.Delete(string(p[1:]), now)
	case deltaExpire, deltaEvict:
		d.cache.Remove(string(p[1:]))
	default:
		return false, fmt.Errorf("unknown cache record kind %q", p[0])
	}
	return false, nil
}

// applyJournalRecord adapts applyCacheRecord to the storage.Open
// replay signature.
func (d *Directory) applyJournalRecord(p []byte) error {
	_, err := d.applyCacheRecord(p)
	return err
}

// OpenCacheStore recovers the journaled cache checkpoint at base inside
// fsys into d (snapshot records first, then journal deltas, then the
// admission trim and clash-tracker registration a LoadCache would do),
// attaches the journal hooks, and returns the store ready for
// Checkpoint. Damage never fails recovery: torn tails are dropped,
// corrupt files are quarantined and their salvageable prefix merged,
// and a legacy-format ("sdcache v1") snapshot is read via the old
// parser and upgraded in place by the first Checkpoint. The error
// return is environmental only (an unreadable disk).
//
// Recovery tallies land in the registry: cache_recovery_salvaged_total
// and cache_recovery_corrupt_total.
func OpenCacheStore(fsys storage.FS, base string, d *Directory) (*CacheStore, storage.Recovery, error) {
	ins, err := newCacheStoreInstruments(d.Registry())
	if err != nil {
		return nil, storage.Recovery{}, err
	}
	legacySalvaged := 0
	loaded := 0
	st, rec, err := storage.Open(fsys, base, storage.OpenOptions{
		Replay: func(p []byte) error {
			added, rerr := d.applyCacheRecord(p)
			if added {
				loaded++
			}
			return rerr
		},
		Legacy: func(data []byte) error {
			d.mu.Lock()
			defer d.mu.Unlock()
			n, lerr := d.cache.Load(bytes.NewReader(data), d.cfg.Clock())
			loaded += n
			if lerr != nil {
				// Partial salvage: n entries merged before the damage;
				// the store quarantines the file.
				legacySalvaged += n
				return lerr
			}
			return nil
		},
	})
	if err != nil {
		return nil, rec, err
	}
	cs := &CacheStore{store: st, dir: d, ins: ins, loaded: loaded}
	cs.ins.salvaged.Add(uint64(rec.Salvaged + legacySalvaged))
	cs.ins.corrupt.Add(uint64(rec.Corrupt))

	// The post-load bookkeeping every recovery needs, regardless of
	// which format the bytes were in.
	d.mu.Lock()
	d.registerLoadedLocked(d.cfg.Clock())
	d.mu.Unlock()

	// Attach the journal hooks; everything recovered so far is captured
	// by the caller's first Checkpoint (the store refuses Append until
	// then).
	d.jmu.Lock()
	d.mu.Lock()
	d.journal = cs
	d.jqueue = nil
	d.mu.Unlock()
	d.jmu.Unlock()
	return cs, rec, nil
}

// appendBatch journals one drained delta batch. Errors are counted, not
// propagated: a failed append breaks the store, which then refuses
// further appends cheaply until a Checkpoint succeeds — the directory
// keeps serving either way, degraded to snapshot-cadence durability.
func (cs *CacheStore) appendBatch(batch [][]byte) {
	if err := cs.store.Append(batch...); err != nil {
		cs.ins.appendErrs.Inc()
		return
	}
	cs.ins.appended.Add(uint64(len(batch)))
}

// Checkpoint folds the live cache into a fresh snapshot generation and
// rotates the journal. The cache encode happens under the directory
// lock; the disk writes do not. Queued-but-undrained deltas are
// discarded in the same critical section — their effects are inside the
// snapshot by construction.
func (cs *CacheStore) Checkpoint() error {
	d := cs.dir
	d.jmu.Lock()
	defer d.jmu.Unlock()
	d.mu.Lock()
	live := d.cache.Live()
	sort.Slice(live, func(i, j int) bool { return live[i].Desc.Key() < live[j].Desc.Key() })
	entries := make([][]byte, 0, len(live))
	for _, e := range live {
		if p := encodeLearn(e); p != nil {
			entries = append(entries, p)
		}
	}
	d.jqueue = nil
	d.mu.Unlock()

	err := cs.store.Compact(func(add func([]byte) error) error {
		for _, p := range entries {
			if err := add(p); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		cs.ins.checkpointErrs.Inc()
		return err
	}
	cs.ins.compactions.Inc()
	return nil
}

// JournalRecords reports deltas appended since the last Checkpoint —
// the compaction-threshold input.
func (cs *CacheStore) JournalRecords() int { return cs.store.JournalRecords() }

// Loaded reports how many entries recovery restored into the cache.
func (cs *CacheStore) Loaded() int { return cs.loaded }

// CacheStoreStats is a point-in-time sample of the persistence
// counters, for operator dumps (SIGUSR1) without a metrics scrape.
type CacheStoreStats struct {
	Compactions      uint64
	CheckpointErrors uint64
	Appended         uint64
	AppendErrors     uint64
	Salvaged         uint64
	Corrupt          uint64
	JournalRecords   int
	Broken           bool
}

// Stats samples the persistence counters.
func (cs *CacheStore) Stats() CacheStoreStats {
	return CacheStoreStats{
		Compactions:      cs.ins.compactions.Value(),
		CheckpointErrors: cs.ins.checkpointErrs.Value(),
		Appended:         cs.ins.appended.Value(),
		AppendErrors:     cs.ins.appendErrs.Value(),
		Salvaged:         cs.ins.salvaged.Value(),
		Corrupt:          cs.ins.corrupt.Value(),
		JournalRecords:   cs.store.JournalRecords(),
		Broken:           cs.store.Broken(),
	}
}

// Broken reports whether the journal is refusing appends until the next
// successful Checkpoint.
func (cs *CacheStore) Broken() bool { return cs.store.Broken() }

// Close releases the store. Acknowledged appends are already durable.
func (cs *CacheStore) Close() error {
	d := cs.dir
	d.jmu.Lock()
	defer d.jmu.Unlock()
	d.mu.Lock()
	d.journal = nil
	d.jqueue = nil
	d.mu.Unlock()
	return cs.store.Close()
}
