// Command mcbench regenerates the paper's tables and figures.
//
// Usage:
//
//	mcbench -list
//	mcbench -experiment fig5
//	mcbench -experiment all -full
//	mcbench -experiment fig5,fig12 -workers 8 -json BENCH.json
//
// Quick scale (default) finishes in minutes; -full reproduces the paper's
// parameter ranges and can run for hours, as the originals did.
//
// -workers sets the experiment engine's concurrency (0 = GOMAXPROCS,
// 1 = serial); output is bit-identical at any worker count. -json appends
// a machine-readable benchmark record — wall time per experiment plus
// allocation micro-benchmarks — for tracking perf across commits.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"sessiondir/internal/allocator"
	"sessiondir/internal/experiments"
	"sessiondir/internal/mcast"
	"sessiondir/internal/stats"
)

// benchReport is the schema written by -json.
type benchReport struct {
	Timestamp  string             `json:"timestamp"`
	Scale      string             `json:"scale"`
	Workers    int                `json:"workers"` // 0 = GOMAXPROCS
	GOMAXPROCS int                `json:"gomaxprocs"`
	GoVersion  string             `json:"go_version"`
	Figures    []figureTiming     `json:"figures"`
	Micro      []microBenchResult `json:"micro"`
}

type figureTiming struct {
	ID     string  `json:"id"`
	WallMs float64 `json:"wall_ms"`
}

type microBenchResult struct {
	Name     string  `json:"name"`
	NsPerOp  float64 `json:"ns_per_op"`
	AllocsOp int64   `json:"allocs_per_op"`
	BytesOp  int64   `json:"bytes_per_op"`
}

// microBenches mirrors the hot-path micro-benchmarks in bench_test.go so a
// plain mcbench run can record allocs/op without the test harness.
func microBenches() []microBenchResult {
	mkView := func(n int, d mcast.TTLDistribution) []allocator.SessionInfo {
		rng := stats.NewRNG(5)
		view := make([]allocator.SessionInfo, n)
		for i := range view {
			view[i] = allocator.SessionInfo{Addr: mcast.Addr(rng.IntN(4096)), TTL: d.Sample(rng.IntN)}
		}
		return view
	}
	cases := []struct {
		name  string
		alloc allocator.Allocator
		ttl   mcast.TTL
	}{
		{"AllocateAdaptive", allocator.NewAdaptive(4096, allocator.AdaptiveConfig{GapFraction: 0.2}), 127},
		{"AllocateInformedRandom", allocator.NewInformedRandom(4096), 63},
		{"AllocateHybrid", allocator.NewHybrid(4096), 127},
	}
	var out []microBenchResult
	for _, c := range cases {
		c := c
		view := mkView(500, mcast.DS4())
		rng := stats.NewRNG(5)
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := c.alloc.Allocate(view, c.ttl, rng); err != nil {
					b.Fatal(err)
				}
			}
		})
		out = append(out, microBenchResult{
			Name:     c.name,
			NsPerOp:  float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsOp: res.AllocsPerOp(),
			BytesOp:  res.AllocedBytesPerOp(),
		})
	}
	return out
}

func main() {
	var (
		list     = flag.Bool("list", false, "list available experiments")
		id       = flag.String("experiment", "all", "experiment id (see -list), comma-separated ids, or 'all'")
		full     = flag.Bool("full", false, "paper-scale parameters (slow)")
		outDir   = flag.String("outdir", "", "also write each experiment's output to <outdir>/<id>.txt")
		workers  = flag.Int("workers", 0, "engine concurrency: 0 = GOMAXPROCS, 1 = serial (output identical either way)")
		jsonPath = flag.String("json", "", "write a machine-readable benchmark record (wall times + allocation micro-benches) to this file")
	)
	flag.Parse()

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-10s %s\n", r.ID, r.Description)
		}
		return
	}

	scale := experiments.Quick()
	if *full {
		scale = experiments.Full()
	}
	scale.Workers = *workers

	var runners []experiments.Runner
	if *id == "all" {
		runners = experiments.All()
	} else {
		for _, one := range strings.Split(*id, ",") {
			r, err := experiments.ByID(strings.TrimSpace(one))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				fmt.Fprintln(os.Stderr, "use -list to see available experiments")
				os.Exit(2)
			}
			runners = append(runners, r)
		}
	}

	report := benchReport{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Scale:      scale.Name,
		Workers:    *workers,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}

	for _, r := range runners {
		fmt.Printf("==== %s: %s (scale=%s workers=%d) ====\n", r.ID, r.Description, scale.Name, *workers)
		start := time.Now()
		var out io.Writer = os.Stdout
		var file *os.File
		if *outDir != "" {
			var err error
			file, err = os.Create(filepath.Join(*outDir, r.ID+".txt"))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			out = io.MultiWriter(os.Stdout, file)
		}
		if err := r.Run(out, scale); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", r.ID, err)
			os.Exit(1)
		}
		if file != nil {
			if err := file.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		elapsed := time.Since(start)
		report.Figures = append(report.Figures, figureTiming{
			ID:     r.ID,
			WallMs: float64(elapsed.Microseconds()) / 1000,
		})
		fmt.Printf("==== %s done in %v ====\n\n", r.ID, elapsed.Round(time.Millisecond))
	}

	if *jsonPath != "" {
		fmt.Println("==== micro-benchmarks (allocation hot path) ====")
		report.Micro = microBenches()
		for _, m := range report.Micro {
			fmt.Printf("%-24s %12.0f ns/op %6d B/op %4d allocs/op\n", m.Name, m.NsPerOp, m.BytesOp, m.AllocsOp)
		}
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("benchmark record written to %s\n", *jsonPath)
	}
}
