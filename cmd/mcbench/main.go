// Command mcbench regenerates the paper's tables and figures.
//
// Usage:
//
//	mcbench -list
//	mcbench -experiment fig5
//	mcbench -experiment all -full
//
// Quick scale (default) finishes in minutes; -full reproduces the paper's
// parameter ranges and can run for hours, as the originals did.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"sessiondir/internal/experiments"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list available experiments")
		id     = flag.String("experiment", "all", "experiment id (see -list) or 'all'")
		full   = flag.Bool("full", false, "paper-scale parameters (slow)")
		outDir = flag.String("outdir", "", "also write each experiment's output to <outdir>/<id>.txt")
	)
	flag.Parse()

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-10s %s\n", r.ID, r.Description)
		}
		return
	}

	scale := experiments.Quick()
	if *full {
		scale = experiments.Full()
	}

	var runners []experiments.Runner
	if *id == "all" {
		runners = experiments.All()
	} else {
		r, err := experiments.ByID(*id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			fmt.Fprintln(os.Stderr, "use -list to see available experiments")
			os.Exit(2)
		}
		runners = []experiments.Runner{r}
	}

	for _, r := range runners {
		fmt.Printf("==== %s: %s (scale=%s) ====\n", r.ID, r.Description, scale.Name)
		start := time.Now()
		var out io.Writer = os.Stdout
		var file *os.File
		if *outDir != "" {
			var err error
			file, err = os.Create(filepath.Join(*outDir, r.ID+".txt"))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			out = io.MultiWriter(os.Stdout, file)
		}
		if err := r.Run(out, scale); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", r.ID, err)
			os.Exit(1)
		}
		if file != nil {
			if err := file.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		fmt.Printf("==== %s done in %v ====\n\n", r.ID, time.Since(start).Round(time.Millisecond))
	}
}
