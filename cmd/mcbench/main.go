// Command mcbench regenerates the paper's tables and figures.
//
// Usage:
//
//	mcbench -list
//	mcbench -experiment fig5
//	mcbench -experiment all -full
//	mcbench -experiment fig5,fig12 -workers 8 -json BENCH.json
//
// Quick scale (default) finishes in minutes; -full reproduces the paper's
// parameter ranges and can run for hours, as the originals did.
//
// -workers sets the experiment engine's concurrency (0 = GOMAXPROCS,
// 1 = serial); output is bit-identical at any worker count. -json appends
// a machine-readable benchmark record — wall time per experiment plus
// allocation micro-benchmarks and a registry snapshot from a seeded fleet
// scenario — for tracking perf across commits.
//
// -compare turns mcbench into a regression gate:
//
//	mcbench -compare old.json new.json -tolerance 25% -fail-ratio 2 -tier quick
//
// It prints GitHub-annotation warnings for metrics past the tolerance and
// exits nonzero only for regressions past the fail ratio, so noisy CI
// machines inform without blocking and real cliffs still stop the merge.
// The gate is tiered: "quick" (every PR) checks figure timings and the
// micro budgets; "full" (nightly) additionally requires the
// directory-scale occupancy sweep — a run of ≥100k sessions inside an
// absolute wall budget, placing ≥90% of its target — and ratio-gates the
// sweep's wall times. -merge lets the two tiers share one BENCH.json:
//
//	mcbench -experiment fig5,fig12 -json BENCH.json
//	mcbench -experiment occupancy -full -json BENCH.json -merge
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/netip"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"sessiondir"
	"sessiondir/internal/allocator"
	"sessiondir/internal/experiments"
	"sessiondir/internal/announce"
	"sessiondir/internal/mcast"
	"sessiondir/internal/obs"
	"sessiondir/internal/sap"
	"sessiondir/internal/session"
	"sessiondir/internal/sim"
	"sessiondir/internal/stats"
	"sessiondir/internal/storage"
	"sessiondir/internal/transport"
)

// benchReport is the schema written by -json.
type benchReport struct {
	Timestamp  string             `json:"timestamp"`
	Scale      string             `json:"scale"`
	Workers    int                `json:"workers"` // 0 = GOMAXPROCS
	GOMAXPROCS int                `json:"gomaxprocs"`
	GoVersion  string             `json:"go_version"`
	GOOS       string             `json:"goos,omitempty"` // budget gates that need recvmmsg apply on linux only
	Figures    []figureTiming     `json:"figures"`
	Micro      []microBenchResult `json:"micro"`
	// Occupancy holds the directory-scale occupancy sweep (the -full
	// tier's 100k-session runs), one record per algorithm × resident
	// target, each with its own wall time.
	Occupancy []occupancyRecord `json:"occupancy,omitempty"`
	// Registry is the merged metrics snapshot of a small seeded fleet
	// (same schema the daemon serves at /metrics), so perf numbers and
	// protocol/occupancy counters live in one record.
	Registry []obs.MetricValue `json:"registry,omitempty"`
}

type figureTiming struct {
	ID     string  `json:"id"`
	WallMs float64 `json:"wall_ms"`
}

// occupancyRecord is one occupancy run in the report: the simulation
// outcome plus its wall time, which the full-tier gate budgets.
type occupancyRecord struct {
	Algorithm    string  `json:"algorithm"`
	Sessions     int     `json:"sessions"`
	SpaceSize    uint32  `json:"space_size"`
	Partitions   int     `json:"partitions"`
	Placed       int     `json:"placed"`
	FillClashes  int     `json:"fill_clashes"`
	ChurnClashes int     `json:"churn_clashes"`
	Exhausted    int     `json:"exhausted"`
	Occupancy    float64 `json:"occupancy"`
	WallMs       float64 `json:"wall_ms"`
}

// occupancyKey identifies a record across reports for the ratio gate.
func (o occupancyRecord) key() string {
	return fmt.Sprintf("%s/%d", o.Algorithm, o.Sessions)
}

type microBenchResult struct {
	Name string `json:"name"`
	// NsPerOp is per *unit of work*: per allocation for the Allocate
	// micros, per address for the AllocateBatch micros, per datagram for
	// the UDPRecv micros.
	NsPerOp  float64 `json:"ns_per_op"`
	AllocsOp int64   `json:"allocs_per_op"`
	BytesOp  int64   `json:"bytes_per_op"`
	// Receive-micro extras (zero elsewhere): drain rate and syscall
	// amortization (datagrams retired per receive syscall).
	DgramsPerSec float64 `json:"dgrams_per_sec,omitempty"`
	BatchDepth   float64 `json:"batch_depth,omitempty"`
}

// microBenches mirrors the hot-path micro-benchmarks in bench_test.go so a
// plain mcbench run can record allocs/op without the test harness.
func microBenches() []microBenchResult {
	mkView := func(n int, d mcast.TTLDistribution) []allocator.SessionInfo {
		rng := stats.NewRNG(5)
		view := make([]allocator.SessionInfo, n)
		for i := range view {
			view[i] = allocator.SessionInfo{Addr: mcast.Addr(rng.IntN(4096)), TTL: d.Sample(rng.IntN)}
		}
		return view
	}
	cases := []struct {
		name  string
		alloc allocator.Allocator
		ttl   mcast.TTL
	}{
		{"AllocateAdaptive", allocator.NewAdaptive(4096, allocator.AdaptiveConfig{GapFraction: 0.2}), 127},
		{"AllocateInformedRandom", allocator.NewInformedRandom(4096), 63},
		{"AllocateHybrid", allocator.NewHybrid(4096), 127},
	}
	var out []microBenchResult
	for _, c := range cases {
		c := c
		view := mkView(500, mcast.DS4())
		rng := stats.NewRNG(5)
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := c.alloc.Allocate(view, c.ttl, rng); err != nil {
					b.Fatal(err)
				}
			}
		})
		out = append(out, microBenchResult{
			Name:     c.name,
			NsPerOp:  float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsOp: res.AllocsPerOp(),
			BytesOp:  res.AllocedBytesPerOp(),
		})
	}

	// Batch allocation micros: ns_per_op here is per ADDRESS (total time
	// over N batches of k), which is what the <1µs/address budget gates.
	batchCases := []struct {
		name  string
		alloc allocator.Allocator
		k     int
	}{
		{"AllocateHybridBatch16", allocator.NewHybrid(4096), 16},
		{"AllocateHybridBatch64", allocator.NewHybrid(4096), 64},
		{"AllocateAdaptiveBatch16", allocator.NewAdaptive(4096, allocator.AdaptiveConfig{GapFraction: 0.2}), 16},
	}
	for _, c := range batchCases {
		c := c
		view := mkView(500, mcast.DS4())
		rng := stats.NewRNG(5)
		dst := make([]mcast.Addr, 0, c.k)
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var err error
				dst, err = c.alloc.AllocateBatch(view, 127, c.k, dst[:0], rng)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		out = append(out, microBenchResult{
			Name:     c.name,
			NsPerOp:  float64(res.T.Nanoseconds()) / float64(res.N*c.k),
			AllocsOp: res.AllocsPerOp(),
			BytesOp:  res.AllocedBytesPerOp(),
		})
	}

	// Receive-path micros: the frozen pre-batching baseline vs the
	// shipping batched zero-copy pipeline, per-datagram, fill excluded
	// (see transport.RecvThroughput).
	recvCases := []struct {
		name string
		mode transport.RecvBenchMode
	}{
		{"UDPRecvLegacy", transport.RecvLegacy},
		{"UDPRecvBatch", transport.RecvBatched},
	}
	for _, c := range recvCases {
		res, err := transport.RecvThroughput(c.mode, 200, 64, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "recv micro %s skipped: %v\n", c.name, err)
			continue
		}
		out = append(out, microBenchResult{
			Name:         c.name,
			NsPerOp:      res.NsPerDatagram(),
			AllocsOp:     int64(res.AllocsPerDatagram + 0.5),
			DgramsPerSec: res.DatagramsPerSec(),
			BatchDepth:   res.BatchDepth(),
		})
	}

	// SAP decode micros: the aliasing zero-copy decode (what the receive
	// path runs per datagram) against the copying variant retained-packet
	// callers use. The wire sample is a realistic sdr announcement with an
	// explicit application/sdp payload type, so the zero-copy number
	// exercises the payload-type interning too.
	sdpWire := sampleSAPWire()
	decodeCases := []struct {
		name   string
		decode func(p *sap.Packet, data []byte) error
	}{
		{"SAPDecodeZeroCopy", (*sap.Packet).Decode},
		{"SAPDecodeLegacy", (*sap.Packet).DecodeCopy},
	}
	for _, c := range decodeCases {
		c := c
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			var p sap.Packet
			for i := 0; i < b.N; i++ {
				if err := c.decode(&p, sdpWire); err != nil {
					b.Fatal(err)
				}
			}
		})
		out = append(out, microBenchResult{
			Name:     c.name,
			NsPerOp:  float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsOp: res.AllocsPerOp(),
			BytesOp:  res.AllocedBytesPerOp(),
		})
	}

	out = append(out, checkpointMicros()...)
	return out
}

// checkpointSessions is the cache population for the persistence
// micros: big enough that the O(sessions) vs O(delta) gap is
// unambiguous, small enough to keep the bench quick.
const checkpointSessions = 1000

// checkpointMicros pits the journaled store's per-delta append (what
// the daemon now pays per learned session, measured over an in-memory
// VFS) against the frozen legacy full-snapshot rewrite (what every
// periodic checkpoint used to cost at checkpointSessions cached
// sessions). The budget gate pins the O(delta)-vs-O(sessions) claim:
// one append must stay far cheaper than one full snapshot.
func checkpointMicros() []microBenchResult {
	descs := make([]*session.Description, checkpointSessions)
	payloads := make([][]byte, checkpointSessions)
	for i := range descs {
		descs[i] = &session.Description{
			ID:      uint64(9000 + i),
			Version: 1,
			Origin:  netip.AddrFrom4([4]byte{10, 9, byte(i >> 8), byte(i)}),
			Name:    fmt.Sprintf("checkpoint-bench-%d", i),
			Group:   netip.AddrFrom4([4]byte{224, 2, byte(i >> 8), byte(i)}),
			TTL:     127,
			Media:   []session.Media{{Type: "audio", Port: 20000, Proto: "RTP/AVP", Format: "0"}},
		}
		sdp, err := descs[i].MarshalSDP()
		if err != nil {
			panic(err)
		}
		// The journaled learn-delta framing: kind byte, two timestamps,
		// SDP bytes — same shape sessiondir writes.
		p := make([]byte, 0, 17+len(sdp))
		p = append(p, 'L')
		p = append(p, make([]byte, 16)...)
		payloads[i] = append(p, sdp...)
	}

	var out []microBenchResult

	// Per-delta journal append, with the journal periodically rotated
	// outside the timer so the bench measures appends, not MemFS growth.
	fs := storage.NewMemFS()
	st, _, err := storage.Open(fs, "bench.cache", storage.OpenOptions{
		Replay: func([]byte) error { return nil },
	})
	if err != nil {
		panic(err)
	}
	rotate := func() {
		if cerr := st.Compact(func(add func([]byte) error) error {
			for _, p := range payloads {
				if aerr := add(p); aerr != nil {
					return aerr
				}
			}
			return nil
		}); cerr != nil {
			panic(cerr)
		}
	}
	rotate()
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if i%65536 == 65535 {
				b.StopTimer()
				rotate()
				b.StartTimer()
			}
			if aerr := st.Append(payloads[i%checkpointSessions]); aerr != nil {
				b.Fatal(aerr)
			}
		}
	})
	out = append(out, microBenchResult{
		Name:     "CheckpointJournalAppend",
		NsPerOp:  float64(res.T.Nanoseconds()) / float64(res.N),
		AllocsOp: res.AllocsPerOp(),
		BytesOp:  res.AllocedBytesPerOp(),
	})

	// The frozen baseline: one legacy-format full-cache snapshot per
	// checkpoint, O(sessions) every time.
	cache := announce.NewCache(time.Hour)
	now := time.Date(1998, 9, 1, 12, 0, 0, 0, time.UTC)
	for _, d := range descs {
		cache.Restore(d, now, now, now)
	}
	res = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if serr := cache.Save(io.Discard); serr != nil {
				b.Fatal(serr)
			}
		}
	})
	out = append(out, microBenchResult{
		Name:     "CheckpointSnapshotLegacy",
		NsPerOp:  float64(res.T.Nanoseconds()) / float64(res.N),
		AllocsOp: res.AllocsPerOp(),
		BytesOp:  res.AllocedBytesPerOp(),
	})
	return out
}

// sampleSAPWire marshals a representative SDP announcement for the decode
// micros, with the payload type spelled out on the wire (the interning
// fast path the zero-alloc budget pins).
func sampleSAPWire() []byte {
	desc := &session.Description{
		ID:      4711,
		Version: 3,
		Origin:  netip.MustParseAddr("10.1.2.3"),
		Name:    "mcbench decode sample",
		Group:   netip.MustParseAddr("224.2.128.99"),
		TTL:     127,
		Media:   []session.Media{{Type: "audio", Port: 20000, Proto: "RTP/AVP", Format: "0"}},
	}
	payload, err := desc.MarshalSDP()
	if err != nil {
		panic(err)
	}
	pkt := sap.Packet{
		Type:        sap.Announce,
		MsgIDHash:   sap.MsgIDHashOf(payload),
		Origin:      desc.Origin,
		PayloadType: sap.PayloadTypeSDP,
		Payload:     payload,
	}
	wire, err := pkt.Marshal(nil)
	if err != nil {
		panic(err)
	}
	return wire
}

// budgetFailures enforces the absolute perf budgets on a fresh report —
// unlike the ratio gate these do not need a baseline, so a report that
// merely keeps pace with a slow ancestor still cannot pass while blowing
// the targets this PR-era hardware established:
//
//   - batched Hybrid allocation under 1µs per address at batch 16;
//   - zero steady-state allocations per received datagram;
//   - zero allocations per zero-copy SAP decode (the aliasing Decode the
//     receive path runs on every datagram);
//   - on linux, ≥10 datagrams retired per receive syscall (recvmmsg
//     amortization) and the batched drain at least as fast per datagram
//     as the frozen pre-batching baseline;
//   - one journaled checkpoint delta append at most 1/20th of a legacy
//     full-snapshot rewrite at 1000 cached sessions — the O(delta) vs
//     O(sessions) persistence claim.
func budgetFailures(r benchReport) []string {
	micro := make(map[string]microBenchResult, len(r.Micro))
	for _, m := range r.Micro {
		micro[m.Name] = m
	}
	var fails []string
	if m, ok := micro["AllocateHybridBatch16"]; !ok {
		fails = append(fails, "budget: micro AllocateHybridBatch16 missing from report")
	} else if m.NsPerOp >= 1000 {
		fails = append(fails, fmt.Sprintf("budget: AllocateHybridBatch16 %.0f ns/address, budget < 1000", m.NsPerOp))
	}
	if m, ok := micro["SAPDecodeZeroCopy"]; !ok {
		fails = append(fails, "budget: micro SAPDecodeZeroCopy missing from report")
	} else if m.AllocsOp != 0 {
		fails = append(fails, fmt.Sprintf("budget: SAPDecodeZeroCopy %d allocs/op, budget 0", m.AllocsOp))
	}
	app, haveApp := micro["CheckpointJournalAppend"]
	snap, haveSnap := micro["CheckpointSnapshotLegacy"]
	switch {
	case !haveApp:
		fails = append(fails, "budget: micro CheckpointJournalAppend missing from report")
	case !haveSnap:
		fails = append(fails, "budget: micro CheckpointSnapshotLegacy missing from report")
	case app.NsPerOp > 0 && snap.NsPerOp/app.NsPerOp < 20:
		fails = append(fails, fmt.Sprintf("budget: journal append %.0f ns is only 1/%.1f of a full snapshot (%.0f ns), budget ≤ 1/20 (O(delta) vs O(sessions))",
			app.NsPerOp, snap.NsPerOp/app.NsPerOp, snap.NsPerOp))
	}
	batch, haveBatch := micro["UDPRecvBatch"]
	if !haveBatch {
		fails = append(fails, "budget: micro UDPRecvBatch missing from report")
		return fails
	}
	if batch.AllocsOp != 0 {
		fails = append(fails, fmt.Sprintf("budget: UDPRecvBatch %d allocs/datagram, budget 0", batch.AllocsOp))
	}
	if r.GOOS == "linux" {
		if batch.BatchDepth < 10 {
			fails = append(fails, fmt.Sprintf("budget: UDPRecvBatch %.1f datagrams/syscall, budget ≥ 10 (recvmmsg)", batch.BatchDepth))
		}
		if legacy, ok := micro["UDPRecvLegacy"]; ok && batch.NsPerOp > 0 {
			if ratio := legacy.NsPerOp / batch.NsPerOp; ratio < 1.2 {
				fails = append(fails, fmt.Sprintf("budget: batched drain only %.2fx the legacy baseline, budget ≥ 1.2x", ratio))
			}
		}
	}
	return fails
}

// registrySnapshot runs a small deterministic fleet — four directories on
// an in-process bus under a virtual clock, seeds fixed — and returns their
// merged registry sample. Counters sum across agents; the run is
// replayable, so two mcbench invocations on the same tree produce the
// same snapshot.
func registrySnapshot() ([]obs.MetricValue, error) {
	bus := transport.NewBus()
	now := time.Date(1998, 9, 1, 12, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	const agents = 4
	var dirs []*sessiondir.Directory
	for i := 0; i < agents; i++ {
		d, err := sessiondir.New(sessiondir.Config{
			Origin:    netip.AddrFrom4([4]byte{10, 0, 0, byte(i + 1)}),
			Transport: bus.Endpoint(),
			Space:     mcast.SyntheticSpace(64),
			Seed:      uint64(i + 1),
			Clock:     clock,
		})
		if err != nil {
			return nil, err
		}
		dirs = append(dirs, d)
	}
	for round := 0; round < 30; round++ {
		if round < 8 {
			for i, d := range dirs {
				_, err := d.CreateSession(&session.Description{
					Name:  fmt.Sprintf("bench-%d-%d", i, round),
					TTL:   127,
					Media: []session.Media{{Type: "audio", Port: 20000, Proto: "RTP/AVP", Format: "0"}},
				})
				if err != nil {
					return nil, err
				}
			}
		}
		now = now.Add(5 * time.Second)
		for _, d := range dirs {
			d.Step(now)
		}
	}
	merged := make(map[string]obs.MetricValue)
	for _, d := range dirs {
		for _, mv := range d.Registry().Snapshot() {
			if cur, ok := merged[mv.Name]; ok {
				cur.Value += mv.Value
				merged[mv.Name] = cur
			} else {
				merged[mv.Name] = mv
			}
		}
		d.Close()
	}
	names := make([]string, 0, len(merged))
	for n := range merged {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]obs.MetricValue, 0, len(names))
	for _, n := range names {
		out = append(out, merged[n])
	}
	return out, nil
}

// compareOpts parameterise the regression gate.
type compareOpts struct {
	// tolerancePct is the informational threshold: a metric this many
	// percent slower than the baseline gets a warning annotation.
	tolerancePct float64
	// failRatio is the hard gate: new/old above this fails the run.
	failRatio float64
	// tier selects the budget set: "quick" (every PR — micro budgets
	// only, occupancy ignored) or "full" (nightly — additionally requires
	// the 100k-session occupancy runs and gates their wall clock and
	// placement rate absolutely).
	tier string
}

// Full-tier absolute budgets for the occupancy sweep.
const (
	// fullTierMinSessions: the report must contain at least one run at
	// directory scale — the repo's 100k-session claim.
	fullTierMinSessions = 100000
	// fullTierWallBudgetMs bounds any single occupancy run's wall time.
	fullTierWallBudgetMs = 600000 // 10 minutes
	// fullTierMinPlacedPct: each run must place at least this fraction of
	// its resident target (placement failures mean the allocator
	// exhausted the space for some view — a capacity regression).
	fullTierMinPlacedPct = 0.9
)

// fullTierFailures enforces the nightly tier's absolute budgets on the
// new report: the occupancy sweep must be present, reach 100k sessions,
// place ≥90% of each target, and keep every run inside the wall budget.
func fullTierFailures(r benchReport) []string {
	if len(r.Occupancy) == 0 {
		return []string{"full tier: report has no occupancy records (run mcbench -experiment occupancy -full -json ...)"}
	}
	var fails []string
	maxSessions := 0
	for _, o := range r.Occupancy {
		if o.Sessions > maxSessions {
			maxSessions = o.Sessions
		}
		if float64(o.Placed) < fullTierMinPlacedPct*float64(o.Sessions) {
			fails = append(fails, fmt.Sprintf("full tier: occupancy %s placed %d of %d sessions, budget ≥ %.0f%%",
				o.key(), o.Placed, o.Sessions, fullTierMinPlacedPct*100))
		}
		if o.WallMs > fullTierWallBudgetMs {
			fails = append(fails, fmt.Sprintf("full tier: occupancy %s took %.0f ms, budget ≤ %d ms",
				o.key(), o.WallMs, fullTierWallBudgetMs))
		}
	}
	if maxSessions < fullTierMinSessions {
		fails = append(fails, fmt.Sprintf("full tier: largest occupancy run is %d sessions, budget requires ≥ %d",
			maxSessions, fullTierMinSessions))
	}
	return fails
}

// parseCompareArgs accepts the post-flag arguments of a -compare run:
// two report files in either position, plus optional trailing
// "-tolerance 25%", "-fail-ratio 2" and "-tier quick|full" pairs (the
// stdlib flag package stops at the first positional, so these are
// parsed by hand).
func parseCompareArgs(args []string) (oldPath, newPath string, opts compareOpts, err error) {
	opts = compareOpts{tolerancePct: 25, failRatio: 2, tier: "quick"}
	var files []string
	for i := 0; i < len(args); i++ {
		switch strings.TrimLeft(args[i], "-") {
		case "tier":
			if i+1 >= len(args) {
				return "", "", opts, fmt.Errorf("-tier needs a value")
			}
			i++
			if args[i] != "quick" && args[i] != "full" {
				return "", "", opts, fmt.Errorf("bad -tier %q (quick or full)", args[i])
			}
			opts.tier = args[i]
		case "tolerance":
			if i+1 >= len(args) {
				return "", "", opts, fmt.Errorf("-tolerance needs a value")
			}
			i++
			v, perr := strconv.ParseFloat(strings.TrimSuffix(args[i], "%"), 64)
			if perr != nil || v < 0 {
				return "", "", opts, fmt.Errorf("bad -tolerance %q", args[i])
			}
			opts.tolerancePct = v
		case "fail-ratio":
			if i+1 >= len(args) {
				return "", "", opts, fmt.Errorf("-fail-ratio needs a value")
			}
			i++
			v, perr := strconv.ParseFloat(args[i], 64)
			if perr != nil || v <= 1 {
				return "", "", opts, fmt.Errorf("bad -fail-ratio %q (must be > 1)", args[i])
			}
			opts.failRatio = v
		default:
			files = append(files, args[i])
		}
	}
	if len(files) != 2 {
		return "", "", opts, fmt.Errorf("-compare needs exactly two report files, got %d", len(files))
	}
	return files[0], files[1], opts, nil
}

// compareReports checks every timing metric present in both reports.
// Returned warnings are informational (past tolerance); failures are past
// the fail ratio. Metrics only present on one side are ignored — adding
// or retiring a benchmark must not fail the gate.
func compareReports(oldR, newR benchReport, opts compareOpts) (warnings, failures []string) {
	type metric struct {
		name       string
		oldV, newV float64
	}
	var metrics []metric
	oldFig := make(map[string]float64, len(oldR.Figures))
	for _, f := range oldR.Figures {
		oldFig[f.ID] = f.WallMs
	}
	for _, f := range newR.Figures {
		if old, ok := oldFig[f.ID]; ok {
			metrics = append(metrics, metric{"figure " + f.ID + " wall_ms", old, f.WallMs})
		}
	}
	if opts.tier == "full" {
		// Occupancy wall times join the ratio gate only on the nightly
		// tier: quick PR runs don't regenerate the sweep, so their reports
		// carry stale rows that must not annotate unrelated changes.
		oldOcc := make(map[string]occupancyRecord, len(oldR.Occupancy))
		for _, o := range oldR.Occupancy {
			oldOcc[o.key()] = o
		}
		for _, o := range newR.Occupancy {
			if old, ok := oldOcc[o.key()]; ok {
				metrics = append(metrics, metric{"occupancy " + o.key() + " wall_ms", old.WallMs, o.WallMs})
			}
		}
	}
	oldMicro := make(map[string]microBenchResult, len(oldR.Micro))
	for _, m := range oldR.Micro {
		oldMicro[m.Name] = m
	}
	for _, m := range newR.Micro {
		old, ok := oldMicro[m.Name]
		if !ok {
			continue
		}
		metrics = append(metrics, metric{"micro " + m.Name + " ns_per_op", old.NsPerOp, m.NsPerOp})
		if m.AllocsOp > old.AllocsOp {
			warnings = append(warnings, fmt.Sprintf("micro %s allocs_per_op grew %d -> %d",
				m.Name, old.AllocsOp, m.AllocsOp))
		}
	}
	for _, m := range metrics {
		if m.oldV <= 0 {
			continue // nothing meaningful to ratio against
		}
		ratio := m.newV / m.oldV
		line := fmt.Sprintf("%s: %.2f -> %.2f (%.2fx)", m.name, m.oldV, m.newV, ratio)
		switch {
		case ratio > opts.failRatio:
			failures = append(failures, line)
		case ratio > 1+opts.tolerancePct/100:
			warnings = append(warnings, line)
		}
	}
	return warnings, failures
}

// mergeReports overlays a fresh run onto a previous record so one file
// can carry tiers produced by separate invocations (quick figures on
// every PR, the -full occupancy sweep nightly). Figure timings merge by
// id with the fresh run winning; occupancy is replaced only when the
// fresh run regenerated it; micro benches and the registry snapshot are
// always the fresh run's (a -json run always produces them). Header
// fields (timestamp, scale, toolchain) are the fresh run's.
func mergeReports(prev, fresh benchReport) benchReport {
	out := fresh
	seen := make(map[string]bool, len(fresh.Figures))
	for _, f := range fresh.Figures {
		seen[f.ID] = true
	}
	for _, f := range prev.Figures {
		if !seen[f.ID] {
			out.Figures = append(out.Figures, f)
		}
	}
	sort.Slice(out.Figures, func(i, j int) bool { return out.Figures[i].ID < out.Figures[j].ID })
	if len(fresh.Occupancy) == 0 {
		out.Occupancy = prev.Occupancy
	}
	return out
}

func readReport(path string) (benchReport, error) {
	var r benchReport
	buf, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(buf, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// runCompare is the -compare entry point; the returned code is the
// process exit status (0 ok, 1 hard regression, 2 usage/read error).
func runCompare(args []string) int {
	oldPath, newPath, opts, err := parseCompareArgs(args)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	oldR, err := readReport(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	newR, err := readReport(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	warnings, failures := compareReports(oldR, newR, opts)
	failures = append(failures, budgetFailures(newR)...)
	if opts.tier == "full" {
		failures = append(failures, fullTierFailures(newR)...)
	}
	fmt.Printf("compare %s -> %s: tier %s, tolerance %.0f%%, fail ratio %.2gx\n",
		oldPath, newPath, opts.tier, opts.tolerancePct, opts.failRatio)
	for _, w := range warnings {
		// GitHub Actions renders ::warning:: as a PR annotation; locally it
		// is just a greppable prefix.
		fmt.Printf("::warning title=bench regression::%s\n", w)
	}
	for _, f := range failures {
		fmt.Printf("::error title=bench regression::%s\n", f)
	}
	if len(failures) > 0 {
		fmt.Printf("FAIL: %d metric(s) regressed past %.2gx\n", len(failures), opts.failRatio)
		return 1
	}
	fmt.Printf("ok: %d warning(s), no hard regressions\n", len(warnings))
	return 0
}

func main() {
	var (
		list     = flag.Bool("list", false, "list available experiments")
		id       = flag.String("experiment", "all", "experiment id (see -list), comma-separated ids, or 'all'")
		full     = flag.Bool("full", false, "paper-scale parameters (slow)")
		outDir   = flag.String("outdir", "", "also write each experiment's output to <outdir>/<id>.txt")
		workers  = flag.Int("workers", 0, "engine concurrency: 0 = GOMAXPROCS, 1 = serial (output identical either way)")
		jsonPath = flag.String("json", "", "write a machine-readable benchmark record (wall times + allocation micro-benches) to this file")
		merge    = flag.Bool("merge", false, "merge into an existing -json file instead of replacing it: figures merge by id, occupancy is replaced only when this run regenerated it")
		compare  = flag.Bool("compare", false, "compare two benchmark records: mcbench -compare old.json new.json [-tolerance 25%] [-fail-ratio 2] [-tier quick|full]")
	)
	flag.Parse()

	if *compare {
		os.Exit(runCompare(flag.Args()))
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-10s %s\n", r.ID, r.Description)
		}
		return
	}

	scale := experiments.Quick()
	if *full {
		scale = experiments.Full()
	}
	scale.Workers = *workers

	var runners []experiments.Runner
	if *id == "all" {
		runners = experiments.All()
	} else {
		for _, one := range strings.Split(*id, ",") {
			r, err := experiments.ByID(strings.TrimSpace(one))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				fmt.Fprintln(os.Stderr, "use -list to see available experiments")
				os.Exit(2)
			}
			runners = append(runners, r)
		}
	}

	report := benchReport{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Scale:      scale.Name,
		Workers:    *workers,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
	}

	// The occupancy sweep is recorded per run (each row carries its own
	// wall time for the full-tier budget), so when a JSON record is
	// requested its runner is replaced with one that threads results into
	// the report while printing the same rows.
	if *jsonPath != "" {
		for i, r := range runners {
			if r.ID != "occupancy" {
				continue
			}
			runners[i].Run = func(w io.Writer, s experiments.Scale) error {
				cfgs, err := experiments.OccupancyConfigs(s)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "# Occupancy: fill + churn at directory scale (Mbone %d nodes, space %d)\n",
					s.MboneNodes, s.OccSpace)
				for _, cfg := range cfgs {
					start := time.Now()
					res := sim.RunOccupancy(cfg)
					wall := time.Since(start)
					fmt.Fprintln(w, res.String())
					report.Occupancy = append(report.Occupancy, occupancyRecord{
						Algorithm:    res.Algorithm,
						Sessions:     res.Sessions,
						SpaceSize:    res.SpaceSize,
						Partitions:   res.Partitions,
						Placed:       res.Placed,
						FillClashes:  res.FillClashes,
						ChurnClashes: res.ChurnClashes,
						Exhausted:    res.Exhausted,
						Occupancy:    res.Occupancy,
						WallMs:       float64(wall.Microseconds()) / 1000,
					})
				}
				return nil
			}
		}
	}

	for _, r := range runners {
		fmt.Printf("==== %s: %s (scale=%s workers=%d) ====\n", r.ID, r.Description, scale.Name, *workers)
		start := time.Now()
		var out io.Writer = os.Stdout
		var file *os.File
		if *outDir != "" {
			var err error
			file, err = os.Create(filepath.Join(*outDir, r.ID+".txt"))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			out = io.MultiWriter(os.Stdout, file)
		}
		if err := r.Run(out, scale); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", r.ID, err)
			os.Exit(1)
		}
		if file != nil {
			if err := file.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		elapsed := time.Since(start)
		report.Figures = append(report.Figures, figureTiming{
			ID:     r.ID,
			WallMs: float64(elapsed.Microseconds()) / 1000,
		})
		fmt.Printf("==== %s done in %v ====\n\n", r.ID, elapsed.Round(time.Millisecond))
	}

	if *jsonPath != "" {
		fmt.Println("==== micro-benchmarks (allocation hot path) ====")
		report.Micro = microBenches()
		for _, m := range report.Micro {
			fmt.Printf("%-24s %12.0f ns/op %6d B/op %4d allocs/op", m.Name, m.NsPerOp, m.BytesOp, m.AllocsOp)
			if m.DgramsPerSec > 0 {
				fmt.Printf(" %12.0f dgram/s %6.1f dgram/syscall", m.DgramsPerSec, m.BatchDepth)
			}
			fmt.Println()
		}
		snap, err := registrySnapshot()
		if err != nil {
			fmt.Fprintf(os.Stderr, "registry snapshot: %v\n", err)
			os.Exit(1)
		}
		report.Registry = snap
		if *merge {
			if prev, err := readReport(*jsonPath); err == nil {
				report = mergeReports(prev, report)
			} else if !os.IsNotExist(err) {
				fmt.Fprintf(os.Stderr, "-merge: %v\n", err)
				os.Exit(1)
			}
		}
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("benchmark record written to %s\n", *jsonPath)
	}
}
