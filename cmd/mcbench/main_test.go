package main

import (
	"os"
	"path/filepath"
	"testing"
)

func baselineReport() benchReport {
	return benchReport{
		Figures: []figureTiming{{ID: "fig5", WallMs: 1000}, {ID: "fig12", WallMs: 400}},
		Micro: []microBenchResult{
			{Name: "AllocateAdaptive", NsPerOp: 2000, AllocsOp: 0, BytesOp: 0},
			{Name: "AllocateHybrid", NsPerOp: 3000, AllocsOp: 0, BytesOp: 0},
		},
	}
}

func TestCompareReportsWithinTolerance(t *testing.T) {
	oldR := baselineReport()
	newR := baselineReport()
	newR.Figures[0].WallMs = 1100 // +10%: inside the 25% band
	warnings, failures := compareReports(oldR, newR, compareOpts{tolerancePct: 25, failRatio: 2})
	if len(warnings) != 0 || len(failures) != 0 {
		t.Fatalf("clean run flagged: warnings=%v failures=%v", warnings, failures)
	}
}

func TestCompareReportsWarnsPastTolerance(t *testing.T) {
	oldR := baselineReport()
	newR := baselineReport()
	newR.Micro[0].NsPerOp = 3100 // +55%: warn, don't fail
	warnings, failures := compareReports(oldR, newR, compareOpts{tolerancePct: 25, failRatio: 2})
	if len(failures) != 0 {
		t.Fatalf("soft regression hard-failed: %v", failures)
	}
	if len(warnings) != 1 {
		t.Fatalf("warnings = %v, want exactly one", warnings)
	}
}

func TestCompareReportsFailsPastRatio(t *testing.T) {
	oldR := baselineReport()
	newR := baselineReport()
	newR.Figures[1].WallMs = 1000 // 2.5x: hard fail
	_, failures := compareReports(oldR, newR, compareOpts{tolerancePct: 25, failRatio: 2})
	if len(failures) != 1 {
		t.Fatalf("2.5x slowdown not failed: %v", failures)
	}
}

func TestCompareReportsWarnsOnAllocGrowth(t *testing.T) {
	oldR := baselineReport()
	newR := baselineReport()
	newR.Micro[1].AllocsOp = 3
	warnings, failures := compareReports(oldR, newR, compareOpts{tolerancePct: 25, failRatio: 2})
	if len(failures) != 0 {
		t.Fatalf("alloc growth hard-failed: %v", failures)
	}
	if len(warnings) != 1 {
		t.Fatalf("warnings = %v, want the allocs_per_op growth", warnings)
	}
}

func TestCompareReportsIgnoresUnmatchedMetrics(t *testing.T) {
	oldR := baselineReport()
	newR := baselineReport()
	newR.Figures = append(newR.Figures, figureTiming{ID: "fig99", WallMs: 1e9})
	oldR.Micro = append(oldR.Micro, microBenchResult{Name: "Retired", NsPerOp: 1})
	warnings, failures := compareReports(oldR, newR, compareOpts{tolerancePct: 25, failRatio: 2})
	if len(warnings) != 0 || len(failures) != 0 {
		t.Fatalf("unmatched metrics flagged: warnings=%v failures=%v", warnings, failures)
	}
}

func TestParseCompareArgs(t *testing.T) {
	oldP, newP, opts, err := parseCompareArgs([]string{"old.json", "new.json", "-tolerance", "30%", "-fail-ratio", "3"})
	if err != nil {
		t.Fatal(err)
	}
	if oldP != "old.json" || newP != "new.json" {
		t.Fatalf("files = %q, %q", oldP, newP)
	}
	if opts.tolerancePct != 30 || opts.failRatio != 3 {
		t.Fatalf("opts = %+v", opts)
	}
	if _, _, _, err := parseCompareArgs([]string{"only-one.json"}); err == nil {
		t.Fatal("single file accepted")
	}
	if _, _, _, err := parseCompareArgs([]string{"a", "b", "-fail-ratio", "0.5"}); err == nil {
		t.Fatal("fail ratio <= 1 accepted")
	}
}

// TestRunCompareInjected2xSlowdown is the CI acceptance fixture: a report
// whose figure timing doubled-and-a-bit must make runCompare exit nonzero.
func TestRunCompareInjected2xSlowdown(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	if err := os.WriteFile(oldPath, []byte(`{"figures":[{"id":"fig5","wall_ms":1000}],"micro":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newPath, []byte(`{"figures":[{"id":"fig5","wall_ms":2100}],"micro":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := runCompare([]string{oldPath, newPath, "-tolerance", "25%"}); code == 0 {
		t.Fatal("2.1x slowdown passed the gate")
	}
	// And the same pair passes with the ratio raised above the slowdown.
	if code := runCompare([]string{oldPath, newPath, "-fail-ratio", "3"}); code != 0 {
		t.Fatalf("gate failed below the fail ratio: exit %d", code)
	}
}
