package main

import (
	"os"
	"path/filepath"
	"testing"
)

func baselineReport() benchReport {
	return benchReport{
		Figures: []figureTiming{{ID: "fig5", WallMs: 1000}, {ID: "fig12", WallMs: 400}},
		Micro: []microBenchResult{
			{Name: "AllocateAdaptive", NsPerOp: 2000, AllocsOp: 0, BytesOp: 0},
			{Name: "AllocateHybrid", NsPerOp: 3000, AllocsOp: 0, BytesOp: 0},
		},
	}
}

func TestCompareReportsWithinTolerance(t *testing.T) {
	oldR := baselineReport()
	newR := baselineReport()
	newR.Figures[0].WallMs = 1100 // +10%: inside the 25% band
	warnings, failures := compareReports(oldR, newR, compareOpts{tolerancePct: 25, failRatio: 2})
	if len(warnings) != 0 || len(failures) != 0 {
		t.Fatalf("clean run flagged: warnings=%v failures=%v", warnings, failures)
	}
}

func TestCompareReportsWarnsPastTolerance(t *testing.T) {
	oldR := baselineReport()
	newR := baselineReport()
	newR.Micro[0].NsPerOp = 3100 // +55%: warn, don't fail
	warnings, failures := compareReports(oldR, newR, compareOpts{tolerancePct: 25, failRatio: 2})
	if len(failures) != 0 {
		t.Fatalf("soft regression hard-failed: %v", failures)
	}
	if len(warnings) != 1 {
		t.Fatalf("warnings = %v, want exactly one", warnings)
	}
}

func TestCompareReportsFailsPastRatio(t *testing.T) {
	oldR := baselineReport()
	newR := baselineReport()
	newR.Figures[1].WallMs = 1000 // 2.5x: hard fail
	_, failures := compareReports(oldR, newR, compareOpts{tolerancePct: 25, failRatio: 2})
	if len(failures) != 1 {
		t.Fatalf("2.5x slowdown not failed: %v", failures)
	}
}

func TestCompareReportsWarnsOnAllocGrowth(t *testing.T) {
	oldR := baselineReport()
	newR := baselineReport()
	newR.Micro[1].AllocsOp = 3
	warnings, failures := compareReports(oldR, newR, compareOpts{tolerancePct: 25, failRatio: 2})
	if len(failures) != 0 {
		t.Fatalf("alloc growth hard-failed: %v", failures)
	}
	if len(warnings) != 1 {
		t.Fatalf("warnings = %v, want the allocs_per_op growth", warnings)
	}
}

func TestCompareReportsIgnoresUnmatchedMetrics(t *testing.T) {
	oldR := baselineReport()
	newR := baselineReport()
	newR.Figures = append(newR.Figures, figureTiming{ID: "fig99", WallMs: 1e9})
	oldR.Micro = append(oldR.Micro, microBenchResult{Name: "Retired", NsPerOp: 1})
	warnings, failures := compareReports(oldR, newR, compareOpts{tolerancePct: 25, failRatio: 2})
	if len(warnings) != 0 || len(failures) != 0 {
		t.Fatalf("unmatched metrics flagged: warnings=%v failures=%v", warnings, failures)
	}
}

func TestParseCompareArgs(t *testing.T) {
	oldP, newP, opts, err := parseCompareArgs([]string{"old.json", "new.json", "-tolerance", "30%", "-fail-ratio", "3"})
	if err != nil {
		t.Fatal(err)
	}
	if oldP != "old.json" || newP != "new.json" {
		t.Fatalf("files = %q, %q", oldP, newP)
	}
	if opts.tolerancePct != 30 || opts.failRatio != 3 {
		t.Fatalf("opts = %+v", opts)
	}
	if _, _, _, err := parseCompareArgs([]string{"only-one.json"}); err == nil {
		t.Fatal("single file accepted")
	}
	if _, _, _, err := parseCompareArgs([]string{"a", "b", "-fail-ratio", "0.5"}); err == nil {
		t.Fatal("fail ratio <= 1 accepted")
	}
}

// TestRunCompareInjected2xSlowdown is the CI acceptance fixture: a report
// whose figure timing doubled-and-a-bit must make runCompare exit nonzero.
func TestRunCompareInjected2xSlowdown(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	if err := os.WriteFile(oldPath, []byte(`{"figures":[{"id":"fig5","wall_ms":1000}],"micro":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	// The new report carries budget-compliant micros so the absolute
	// budgets stay quiet and only the injected slowdown drives the gate.
	if err := os.WriteFile(newPath, []byte(`{"figures":[{"id":"fig5","wall_ms":2100}],"micro":[
		{"name":"AllocateHybridBatch16","ns_per_op":400},
		{"name":"SAPDecodeZeroCopy","ns_per_op":40,"allocs_per_op":0},
		{"name":"UDPRecvBatch","ns_per_op":450,"allocs_per_op":0},
		{"name":"CheckpointJournalAppend","ns_per_op":500},
		{"name":"CheckpointSnapshotLegacy","ns_per_op":50000}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := runCompare([]string{oldPath, newPath, "-tolerance", "25%"}); code == 0 {
		t.Fatal("2.1x slowdown passed the gate")
	}
	// And the same pair passes with the ratio raised above the slowdown.
	if code := runCompare([]string{oldPath, newPath, "-fail-ratio", "3"}); code != 0 {
		t.Fatalf("gate failed below the fail ratio: exit %d", code)
	}
}

// budgetReport is a report that satisfies every absolute budget.
func budgetReport() benchReport {
	return benchReport{
		GOOS: "linux",
		Micro: []microBenchResult{
			{Name: "AllocateHybridBatch16", NsPerOp: 400},
			{Name: "SAPDecodeZeroCopy", NsPerOp: 40, AllocsOp: 0},
			{Name: "SAPDecodeLegacy", NsPerOp: 100, AllocsOp: 1, BytesOp: 128},
			{Name: "UDPRecvLegacy", NsPerOp: 800, AllocsOp: 2, DgramsPerSec: 1.2e6, BatchDepth: 1},
			{Name: "UDPRecvBatch", NsPerOp: 450, AllocsOp: 0, DgramsPerSec: 2.2e6, BatchDepth: 30},
			{Name: "CheckpointJournalAppend", NsPerOp: 500},
			{Name: "CheckpointSnapshotLegacy", NsPerOp: 50000},
		},
	}
}

func TestBudgetFailuresCleanReport(t *testing.T) {
	if fails := budgetFailures(budgetReport()); len(fails) != 0 {
		t.Fatalf("budgets flagged a compliant report: %v", fails)
	}
}

func TestBudgetFailuresHybridBatchTooSlow(t *testing.T) {
	r := budgetReport()
	r.Micro[0].NsPerOp = 1500 // per address: past the 1µs target
	if fails := budgetFailures(r); len(fails) != 1 {
		t.Fatalf("slow batched Hybrid not caught: %v", fails)
	}
}

func TestBudgetFailuresAllocRegression(t *testing.T) {
	r := budgetReport()
	r.Micro[4].AllocsOp = 1 // steady-state receive must stay at zero
	if fails := budgetFailures(r); len(fails) != 1 {
		t.Fatalf("alloc regression not caught: %v", fails)
	}
}

func TestBudgetFailuresDecodeAllocRegression(t *testing.T) {
	r := budgetReport()
	r.Micro[1].AllocsOp = 1 // zero-copy SAP decode must stay at zero
	if fails := budgetFailures(r); len(fails) != 1 {
		t.Fatalf("decode alloc regression not caught: %v", fails)
	}
}

func TestBudgetFailuresBatchDepthCollapse(t *testing.T) {
	r := budgetReport()
	r.Micro[4].BatchDepth = 1 // recvmmsg silently degraded to 1:1
	if fails := budgetFailures(r); len(fails) != 1 {
		t.Fatalf("batch-depth collapse not caught: %v", fails)
	}
}

func TestBudgetFailuresMissingMicros(t *testing.T) {
	r := budgetReport()
	r.Micro = nil
	if fails := budgetFailures(r); len(fails) != 4 {
		t.Fatalf("missing micros should produce four failures, got: %v", fails)
	}
}

func TestBudgetFailuresCheckpointRatioCollapse(t *testing.T) {
	r := budgetReport()
	r.Micro[5].NsPerOp = 40000 // append nearly as slow as a full snapshot
	if fails := budgetFailures(r); len(fails) != 1 {
		t.Fatalf("O(sessions)-cost journal append not caught: %v", fails)
	}
}

func TestBudgetFailuresDepthGateLinuxOnly(t *testing.T) {
	r := budgetReport()
	r.GOOS = "darwin"
	r.Micro[4].BatchDepth = 1 // fine off linux: no recvmmsg there
	r.Micro[4].NsPerOp = 900  // and no mandated speedup either
	if fails := budgetFailures(r); len(fails) != 0 {
		t.Fatalf("non-linux report held to linux-only gates: %v", fails)
	}
}
