package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/netip"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"sessiondir"
	"sessiondir/internal/mcast"
	"sessiondir/internal/sap"
	"sessiondir/internal/session"
	"sessiondir/internal/transport"
)

// End-to-end tests against the real binary: build sdrd once, spawn it
// with real sockets, and pin the shutdown ordering (drain the UDP read
// loop before the final checkpoint) and the health/readiness surface.

var (
	buildOnce sync.Once
	sdrdBin   string
	buildErr  error
)

func builtSdrd(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "sdrd-e2e-")
		if err != nil {
			buildErr = err
			return
		}
		sdrdBin = filepath.Join(dir, "sdrd")
		out, err := exec.Command("go", "build", "-o", sdrdBin, ".").CombinedOutput()
		if err != nil {
			buildErr = fmt.Errorf("go build: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return sdrdBin
}

// reserveE2EPort grabs an ephemeral loopback port and frees it for the
// daemon to claim.
func reserveE2EPort(t *testing.T, network string) netip.AddrPort {
	t.Helper()
	switch network {
	case "udp":
		c, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Fatal(err)
		}
		addr := c.LocalAddr().(*net.UDPAddr).AddrPort()
		_ = c.Close()
		return addr
	default:
		l, err := net.ListenTCP("tcp4", &net.TCPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Fatal(err)
		}
		addr := l.Addr().(*net.TCPAddr).AddrPort()
		_ = l.Close()
		return addr
	}
}

// blackHole returns a bound-and-held UDP address that swallows the
// daemon's outbound announcements.
func blackHole(t *testing.T) netip.AddrPort {
	t.Helper()
	c, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c.LocalAddr().(*net.UDPAddr).AddrPort()
}

// startSdrd spawns the built binary and returns the running command.
func startSdrd(t *testing.T, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(builtSdrd(t), args...)
	logPath := filepath.Join(t.TempDir(), "sdrd.log")
	logFile, err := os.Create(logPath)
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stdout, cmd.Stderr = logFile, logFile
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}
		_ = logFile.Close()
		if t.Failed() {
			if b, err := os.ReadFile(logPath); err == nil {
				t.Logf("sdrd log:\n%s", b)
			}
		}
	})
	return cmd
}

func httpGet(t *testing.T, addr netip.AddrPort, path string) (string, int) {
	t.Helper()
	client := &http.Client{Timeout: 2 * time.Second}
	resp, err := client.Get("http://" + addr.String() + path)
	if err != nil {
		return "", 0
	}
	defer func() { _ = resp.Body.Close() }()
	body, _ := io.ReadAll(resp.Body)
	return string(body), resp.StatusCode
}

func waitReadyz(t *testing.T, addr netip.AddrPort, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if _, code := httpGet(t, addr, "/readyz"); code == http.StatusOK {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon not ready after %v", timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// sendAnnouncements crafts n distinct peer announcements and fires them
// at the daemon's listen socket from one injector.
func sendAnnouncements(t *testing.T, target netip.AddrPort, n int) {
	t.Helper()
	conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	for i := 0; i < n; i++ {
		desc := &session.Description{
			ID:      uint64(5000 + i),
			Version: 1,
			Origin:  netip.AddrFrom4([4]byte{10, 7, byte(i / 250), byte(1 + i%250)}),
			Name:    fmt.Sprintf("burst-%d", i),
			Group:   netip.AddrFrom4([4]byte{239, 254, byte(i >> 8), byte(i)}),
			TTL:     15,
			Media:   []session.Media{{Type: "audio", Port: 5004, Proto: "RTP/AVP", Format: "0"}},
		}
		payload, err := desc.MarshalSDP()
		if err != nil {
			t.Fatal(err)
		}
		pkt := sap.Packet{
			Type:      sap.Announce,
			MsgIDHash: sap.MsgIDHashOf(payload),
			Origin:    desc.Origin,
			Payload:   payload,
		}
		buf, err := pkt.Marshal(nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.WriteToUDPAddrPort(buf, target); err != nil {
			t.Fatal(err)
		}
	}
}

// countCachedSessions loads a checkpoint file the same way a restarted
// daemon would and reports how many sessions it holds.
func countCachedSessions(t *testing.T, path string) int {
	t.Helper()
	bus := transport.NewBus()
	dir, err := sessiondir.New(sessiondir.Config{
		Origin:    netip.MustParseAddr("10.200.0.1"),
		Transport: bus.Endpoint(),
		Space:     mcast.SyntheticSpace(256),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dir.Close()
	n, err := dir.LoadCacheFile(path)
	if err != nil {
		t.Fatalf("loading checkpoint %s: %v", path, err)
	}
	return n
}

// TestShutdownDrainSavesTailBurst pins the shutdown ordering: a burst
// still queued in the kernel's socket buffer when SIGTERM lands must be
// drained into the final checkpoint, not discarded with the socket.
func TestShutdownDrainSavesTailBurst(t *testing.T) {
	listen := reserveE2EPort(t, "udp")
	debug := reserveE2EPort(t, "tcp")
	cache := filepath.Join(t.TempDir(), "sessions.cache")
	cmd := startSdrd(t,
		"-origin", "10.100.0.1",
		"-listen", listen.String(),
		"-peers", blackHole(t).String(),
		"-cache", cache,
		"-checkpoint", "0", // only the exit checkpoint: the drain alone must save the burst
		"-http-debug", debug.String(),
	)
	waitReadyz(t, debug, 10*time.Second)

	const burst = 120
	sendAnnouncements(t, listen, burst)
	// SIGTERM immediately: without the drain-before-checkpoint ordering
	// most of the burst is still in the kernel buffer and would be lost.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}

	if n := countCachedSessions(t, cache); n != burst {
		t.Fatalf("final checkpoint holds %d sessions, want %d", n, burst)
	}
}

// TestHealthAndSessionEndpoints scrapes the supervisor surface of a
// live daemon: /healthz, /readyz and the /sessions table.
func TestHealthAndSessionEndpoints(t *testing.T) {
	listen := reserveE2EPort(t, "udp")
	debug := reserveE2EPort(t, "tcp")
	cmd := startSdrd(t,
		"-origin", "10.100.0.2",
		"-listen", listen.String(),
		"-peers", blackHole(t).String(),
		"-announce", "probe target",
		"-http-debug", debug.String(),
	)
	waitReadyz(t, debug, 10*time.Second)

	if body, code := httpGet(t, debug, "/healthz"); code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz = %d %q, want 200 ok", code, body)
	}
	if body, code := httpGet(t, debug, "/readyz"); code != http.StatusOK || strings.TrimSpace(body) != "ready" {
		t.Fatalf("/readyz = %d %q, want 200 ready", code, body)
	}
	body, code := httpGet(t, debug, "/sessions")
	if code != http.StatusOK {
		t.Fatalf("/sessions = %d", code)
	}
	var found bool
	for _, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		parts := strings.SplitN(line, "\t", 4)
		if len(parts) != 4 {
			t.Fatalf("bad /sessions line %q", line)
		}
		if strings.HasPrefix(parts[0], "10.100.0.2/") && parts[3] == "probe target" {
			found = true
		}
	}
	if !found {
		t.Fatalf("own session missing from /sessions:\n%s", body)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
}
