//go:build unix

package main

import (
	"os"
	"syscall"
)

// dumpSignals returns the signals that trigger an on-demand state dump.
// SIGUSR1 is the conventional "report yourself" signal for daemons.
func dumpSignals() []os.Signal {
	return []os.Signal{syscall.SIGUSR1}
}
