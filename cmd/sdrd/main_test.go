package main

import "testing"

func TestDeriveSeedDiverges(t *testing.T) {
	base := deriveSeed("10.0.0.1", 100)
	if got := deriveSeed("10.0.0.1", 100); got != base {
		t.Fatalf("not stable: %#x then %#x", base, got)
	}
	if got := deriveSeed("10.0.0.2", 100); got == base {
		t.Fatalf("different origins share seed %#x", base)
	}
	if got := deriveSeed("10.0.0.1", 101); got == base {
		t.Fatalf("different PIDs share seed %#x", base)
	}
}

func TestDeriveSeedNeverZero(t *testing.T) {
	// Zero would mean "use the library default", resurrecting the shared
	// stream the derivation exists to avoid.
	for pid := 0; pid < 1000; pid++ {
		if deriveSeed("10.0.0.1", pid) == 0 {
			t.Fatalf("pid %d derived seed 0", pid)
		}
	}
}
