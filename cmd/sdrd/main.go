// Command sdrd is a session directory daemon: it announces sessions from
// the command line over SAP, listens for everyone else's announcements,
// allocates addresses with Deterministic Adaptive IPRMA, and runs the
// three-phase clash correction protocol.
//
// By default it joins the well-known SAP group (224.2.127.254:9875), which
// needs multicast-capable networking. With -peers it switches to unicast
// fan-out so a set of daemons can run on hosts (or ports) without
// multicast routing:
//
//	sdrd -origin 10.0.0.1 -listen 127.0.0.1:7001 -peers 127.0.0.1:7002 \
//	     -announce "Team standup" -ttl 15
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"hash/fnv"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"net/netip"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"sessiondir"
	"sessiondir/internal/announce"
	"sessiondir/internal/mcast"
	"sessiondir/internal/obs"
	"sessiondir/internal/session"
	"sessiondir/internal/storage"
	"sessiondir/internal/transport"
)

// traceCapacity is the debug event ring's depth: enough to hold minutes
// of steady-state protocol activity while bounding memory.
const traceCapacity = 4096

// main stays a shell around run so that every deferred cleanup — above all
// the final cache save — executes on the error paths too (log.Fatal inside
// the work function would skip them all).
func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		origin     = flag.String("origin", "127.0.0.1", "our IPv4 address, stamped on announcements")
		group      = flag.String("group", transport.DefaultSAPGroup.String(), "SAP multicast group")
		port       = flag.Uint("port", transport.DefaultSAPPort, "SAP UDP port")
		peers      = flag.String("peers", "", "comma-separated unicast peers (disables multicast)")
		listen     = flag.String("listen", "", "unicast listen address (with -peers)")
		announce   = flag.String("announce", "", "announce a session with this name")
		ttl        = flag.Uint("ttl", 127, "scope TTL for the announced session")
		duration   = flag.Duration("for", 0, "exit after this long (0 = run until signal)")
		cacheFile  = flag.String("cache", "", "persist the session cache to this file (journaled checkpoints) across restarts")
		checkpoint = flag.Duration("checkpoint", time.Minute, "with -cache, fold the journal into a fresh snapshot at this interval (0 = only on exit)")
		budget     = flag.Int("budget", 0, "outbound bandwidth budget in bits/second (0 = unlimited; SAP convention is 4000)")

		storageFaults = flag.String("storage-faults", "", `with -cache, inject deterministic disk faults, e.g. "seed=7,write=0.02,short=0.01,nospace=0.01,sync=0.05" (chaos harness use)`)

		maxSessions  = flag.Int("max-sessions", 0, "bound the listened-session cache; overload is shed drop-newest (0 = unlimited)")
		maxPerOrigin = flag.Int("max-per-origin", 0, "bound cached sessions per announcing origin (0 = unlimited)")
		originRate   = flag.Float64("origin-rate", 0, "per-origin packet budget in packets/second (0 = unlimited)")
		originBurst  = flag.Float64("origin-burst", 0, "per-origin token-bucket depth in packets (0 = max(8, 4x rate))")
		staleAfter   = flag.Duration("stale-after", 0, "cached sessions unheard this long become evictable under budget pressure (0 = cache timeout / 4)")
		cacheTimeout = flag.Duration("cache-timeout", 0, "expire unheard sessions after this long (0 = one hour)")
		shards       = flag.Int("shards", 0, "stripe the session cache across this many per-origin shards; behaviour is identical at any count, only contention changes (0 or 1 = unsharded)")

		seed            = flag.Uint64("seed", 0, "RNG seed for allocation and clash timing (0 = derive from -origin and PID so identically configured daemons diverge)")
		announceInitial = flag.Duration("announce-initial", 0, "first re-announcement delay, doubling each round and capping at 4x (0 = paper's 5s schedule; lower only for tests/chaos harnesses)")
		httpDebug       = flag.String("http-debug", "", "serve /metrics, /trace, /debug/vars and /debug/pprof on this address (empty = disabled)")
	)
	flag.Parse()

	reg := obs.NewRegistry()
	udp, err := openTransport(*group, uint16(*port), *peers, *listen, reg)
	if err != nil {
		return fmt.Errorf("transport: %w", err)
	}
	var tr transport.Transport = udp
	if *budget > 0 {
		limited, err := transport.NewRateLimited(tr, *budget, 0, nil)
		if err != nil {
			return fmt.Errorf("budget: %w", err)
		}
		tr = limited
		log.Printf("outbound budget: %d bits/second", *budget)
	}
	defer func() { _ = tr.Close() }() // exiting anyway; socket errors have nowhere to go

	originAddr, err := netip.ParseAddr(*origin)
	if err != nil {
		return fmt.Errorf("bad -origin: %w", err)
	}

	seedVal := *seed
	if seedVal == 0 {
		seedVal = deriveSeed(*origin, os.Getpid())
		log.Printf("seed: %#x (derived from origin+pid; pin with -seed to replay)", seedVal)
	}
	var trace *obs.Trace
	if *httpDebug != "" {
		trace = obs.NewTrace(traceCapacity)
	}

	dir, err := sessiondir.New(sessiondir.Config{
		Origin:       originAddr,
		Transport:    tr,
		MaxSessions:  *maxSessions,
		MaxPerOrigin: *maxPerOrigin,
		OriginRate:   *originRate,
		OriginBurst:  *originBurst,
		StaleAfter:   *staleAfter,
		CacheTimeout: *cacheTimeout,
		Shards:       *shards,
		Backoff:      backoffFor(*announceInitial),
		Seed:         seedVal,
		Obs:          reg,
		Trace:        trace,
		OnEvent: func(e sessiondir.Event) {
			if e.Desc != nil {
				log.Printf("%s: %s (%s ttl=%d)", e.Kind, e.Desc.Name, e.Desc.Group, e.Desc.TTL)
			} else {
				log.Printf("%s: %s", e.Kind, e.Key)
			}
		},
	})
	if err != nil {
		return fmt.Errorf("directory: %w", err)
	}
	defer dir.Close()

	// ready flips once the socket is bound (it is, the transport is up),
	// the cache restore has completed, and the initial announcement is
	// out — the point where a supervisor can route traffic at us.
	// storageOK drops when checkpoints have failed persistently: the
	// daemon keeps serving the protocol (liveness unaffected) but tells
	// the supervisor its durability story is degraded.
	var ready, storageOK atomic.Bool
	storageOK.Store(true)
	if *httpDebug != "" {
		stopDebug, err := startDebugServer(*httpDebug, reg, trace, dir, &ready, &storageOK)
		if err != nil {
			return err
		}
		defer stopDebug()
	}

	var cstore *sessiondir.CacheStore
	if *cacheFile != "" {
		// A corrupt or truncated cache is a cold start, not a fatal error:
		// damaged files are quarantined (with the readable prefix salvaged)
		// and the announce-listen protocol rebuilds the picture from the
		// network within an announcement interval anyway.
		var fsys storage.FS = storage.NewOSFS(filepath.Dir(*cacheFile))
		if *storageFaults != "" {
			fseed, prof, err := storage.ParseFaultSpec(*storageFaults)
			if err != nil {
				return err
			}
			fsys = storage.NewFaultFS(fsys, fseed, prof)
			log.Printf("storage faults armed: %s", *storageFaults)
		}
		cs, rec, err := sessiondir.OpenCacheStore(fsys, filepath.Base(*cacheFile), dir)
		if err != nil {
			log.Printf("cache load: %v (starting cold)", err)
			storageOK.Store(false)
		} else {
			cstore = cs
			for _, note := range rec.Notes {
				log.Printf("cache recovery: %s", note)
			}
			if rec.Corrupt > 0 {
				log.Printf("cache load: quarantined %d corrupt checkpoint file(s) %v, salvaged %d entries (starting cold otherwise)",
					rec.Corrupt, rec.Quarantined, rec.Salvaged+cs.Loaded())
			}
			if n := cs.Loaded(); n > 0 {
				log.Printf("loaded %d cached sessions from %s", n, *cacheFile)
			}
			// The first checkpoint captures the recovered state and opens
			// the delta journal; until it succeeds the store refuses
			// appends, so a failure here only delays durability.
			if err := cs.Checkpoint(); err != nil {
				log.Printf("cache checkpoint: %v (will retry)", err)
			}
			defer func() {
				if err := cs.Checkpoint(); err != nil {
					log.Printf("cache save: %v", err)
				}
				if err := cs.Close(); err != nil {
					log.Printf("cache close: %v", err)
				}
			}()
		}
	}

	if *announce != "" {
		desc, err := dir.CreateSession(&session.Description{
			Name: *announce,
			TTL:  mcast.TTL(*ttl),
			Media: []session.Media{
				{Type: "audio", Port: 20000, Proto: "RTP/AVP", Format: "0"},
			},
			Start: time.Now(),
			Stop:  time.Now().Add(4 * time.Hour),
		})
		if err != nil {
			return fmt.Errorf("announce: %w", err)
		}
		log.Printf("announcing %q on %s with TTL %d", desc.Name, desc.Group, desc.TTL)
	}
	ready.Store(true)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *duration)
		defer cancel()
	}

	// Graceful shutdown: on a signal or -for expiry, drain the UDP read
	// loop before the final checkpoint defer (registered above, so it runs
	// after this one) — a tail burst still queued in the kernel's socket
	// buffer makes it into the saved cache instead of being discarded with
	// the socket. Error-path exits skip the drain and close fast.
	defer func() {
		if ctx.Err() == nil {
			return
		}
		ready.Store(false)
		log.Println("draining: waiting for the UDP read loop to quiesce")
		if err := udp.DrainClose(200*time.Millisecond, 2*time.Second); err != nil {
			log.Printf("drain: %v", err)
		}
	}()

	// Periodic checkpoints fold the delta journal into a fresh snapshot.
	// Between checkpoints every learned/expired/deleted session is already
	// durable as a journal append, so an unclean exit (OOM kill, power
	// loss) costs at most the deltas of one in-flight batch; the
	// compaction itself is crash-atomic (write-new, fsync, rename).
	//
	// A failed checkpoint is retried with doubling backoff capped at 8x
	// the configured interval, and after checkpointFailLimit consecutive
	// failures /readyz degrades to 503 storage-degraded — the daemon keeps
	// serving the protocol, it just stops claiming durability. The first
	// success heals both.
	if cstore != nil && *checkpoint > 0 {
		go func() {
			const checkpointFailLimit = 3
			maxDelay := 8 * (*checkpoint)
			fails := 0
			delay := *checkpoint
			timer := time.NewTimer(delay)
			defer timer.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-timer.C:
				}
				// Nothing to fold and nothing to heal: skip the O(sessions)
				// rewrite. Journal appends carry durability while idle.
				if cstore.JournalRecords() == 0 && !cstore.Broken() && fails == 0 {
					timer.Reset(delay)
					continue
				}
				if err := cstore.Checkpoint(); err != nil {
					fails++
					if delay *= 2; delay > maxDelay {
						delay = maxDelay
					}
					if fails >= checkpointFailLimit {
						storageOK.Store(false)
					}
					log.Printf("cache checkpoint: %v (attempt %d, next retry in %v)", err, fails, delay)
				} else {
					if fails > 0 {
						log.Printf("cache checkpoint: recovered after %d failed attempts", fails)
					}
					fails = 0
					delay = *checkpoint
					storageOK.Store(true)
				}
				timer.Reset(delay)
			}
		}()
	}

	// SIGUSR1 (where the platform has it) dumps the full health picture on
	// demand: directory metrics including the admission counters, the UDP
	// quarantine counters, and — with -cache — an immediate checkpoint, so
	// an operator diagnosing a suspected flood gets state without waiting
	// for a ticker or restarting the daemon.
	if sigs := dumpSignals(); len(sigs) > 0 {
		dump := make(chan os.Signal, 1)
		signal.Notify(dump, sigs...)
		go func() {
			for {
				select {
				case <-ctx.Done():
					signal.Stop(dump)
					return
				case <-dump:
					m := dir.Metrics()
					log.Printf("dump: sessions=%d cache=%d sent=%d recv=%d learned=%d expired=%d",
						len(dir.Sessions()), dir.CacheSize(), m.AnnouncementsSent,
						m.PacketsReceived, m.SessionsLearned, m.SessionsExpired)
					log.Printf("dump: admission shed=%d quota-drops=%d evictions=%d forged-reports=%d forged-deletes=%d",
						m.Shed, m.QuotaDrops, m.Evictions, m.ForgedReports, m.ForgedDeletes)
					u := udp.Metrics()
					log.Printf("dump: udp received=%d oversized=%d runts=%d read-errors=%d",
						u.Received, u.Oversized, u.Runts, u.ReadErrors)
					if cstore != nil {
						st := cstore.Stats()
						log.Printf("dump: storage journal=%d broken=%v compactions=%d checkpoint-errors=%d appended=%d append-errors=%d salvaged=%d corrupt=%d",
							st.JournalRecords, st.Broken, st.Compactions, st.CheckpointErrors,
							st.Appended, st.AppendErrors, st.Salvaged, st.Corrupt)
						if err := cstore.Checkpoint(); err != nil {
							log.Printf("dump checkpoint: %v", err)
						} else {
							log.Printf("dump: checkpoint saved to %s", *cacheFile)
						}
					}
				}
			}
		}()
	}

	// Periodically print the directory contents, like sdr's session list.
	go func() {
		tick := time.NewTicker(10 * time.Second)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				sessions := dir.Sessions()
				m := dir.Metrics()
				log.Printf("---- %d sessions known | sent=%d recv=%d learned=%d moves=%d defenses=%d/%d dropped=%d forged=%d ----",
					len(sessions), m.AnnouncementsSent, m.PacketsReceived, m.SessionsLearned,
					m.ClashAddressChanges, m.ClashDefensesOwn, m.ClashDefensesThird,
					m.Shed+m.QuotaDrops, m.ForgedReports+m.ForgedDeletes)
				for _, s := range sessions {
					log.Printf("  %-30q %s ttl=%d from %s", s.Name, s.Group, s.TTL, s.Origin)
				}
			}
		}
	}()

	if err := dir.Run(ctx); err != nil && ctx.Err() == nil {
		return err
	}
	log.Println("sdrd exiting")
	return nil
}

func openTransport(group string, port uint16, peers, listen string, reg *obs.Registry) (*transport.UDPTransport, error) {
	if peers != "" {
		var addrs []netip.AddrPort
		for _, p := range strings.Split(peers, ",") {
			ap, err := netip.ParseAddrPort(strings.TrimSpace(p))
			if err != nil {
				return nil, fmt.Errorf("bad peer %q: %w", p, err)
			}
			addrs = append(addrs, ap)
		}
		tr, err := transport.NewUDP(transport.UDPConfig{Peers: addrs, ListenAddr: listen, Obs: reg})
		if err != nil {
			return nil, err
		}
		log.Printf("unicast fan-out on %s to %v", tr.LocalAddr(), addrs)
		return tr, nil
	}
	g, err := netip.ParseAddr(group)
	if err != nil {
		return nil, fmt.Errorf("bad group %q: %w", group, err)
	}
	tr, err := transport.NewUDP(transport.UDPConfig{Group: g, Port: port, Obs: reg})
	if err != nil {
		return nil, err
	}
	log.Printf("joined %s:%d", g, port)
	return tr, nil
}

// backoffFor maps -announce-initial onto the paper's doubling schedule:
// zero keeps the library default (5 s start), anything else moves the
// starting point and caps the steady interval at 4x the start. Without
// the cap a compressed schedule still doubles off past any short test
// window (2s start → announcements at 0,2,6,14,30,62 s), leaving a peer
// that missed one lossy packet with nothing to relearn from; the cap
// keeps a periodic refresh (…,22,30,38 s) inside the window.
func backoffFor(initial time.Duration) announce.Backoff {
	if initial <= 0 {
		return announce.Backoff{}
	}
	b := announce.DefaultBackoff(0)
	b.Initial = initial
	if s := 4 * initial; s < b.Steady {
		b.Steady = s
	}
	return b
}

// deriveSeed gives each daemon its own RNG stream by default. Two daemons
// started with identical flags used to share the fixed fallback seed, so
// a symmetric clash (both announce the same address across a healed
// partition) made both sides draw the same next address and mirror-move
// indefinitely. Hashing origin and PID makes colocated and peer daemons
// diverge without operator action; -seed pins the stream for replayable
// runs.
func deriveSeed(origin string, pid int) uint64 {
	h := fnv.New64a()
	_, _ = fmt.Fprintf(h, "%s|%d", origin, pid)
	s := h.Sum64()
	if s == 0 {
		return 1 // zero means "use the built-in default", which is exactly the shared stream we are avoiding
	}
	return s
}

// startDebugServer serves the observability surface on addr: Prometheus
// text at /metrics, the protocol event ring at /trace, liveness and
// readiness probes at /healthz and /readyz, the live session table at
// /sessions, expvar at /debug/vars and the pprof family under
// /debug/pprof/. It is opt-in via -http-debug and binds before
// returning, so a bad address fails startup instead of logging from a
// goroutine after the daemon looks healthy.
func startDebugServer(addr string, reg *obs.Registry, trace *obs.Trace, dir *sessiondir.Directory, ready, storageOK *atomic.Bool) (shutdown func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("http-debug: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			log.Printf("http-debug: metrics write: %v", err) // scraper hung up mid-response
		}
	})
	// Liveness: the process is serving HTTP, so it is alive. Readiness is
	// the stronger claim — socket bound, cache restore complete, initial
	// announcement out, checkpoints landing — and drops again while
	// draining for shutdown or after persistent storage failure (the
	// daemon still serves; it just stops claiming durability).
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = fmt.Fprintln(w, "ok") // probe hung up; nothing to report to
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !ready.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			_, _ = fmt.Fprintln(w, "starting") // probe hung up; nothing to report to
			return
		}
		if !storageOK.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			_, _ = fmt.Fprintln(w, "storage-degraded") // probe hung up; nothing to report to
			return
		}
		_, _ = fmt.Fprintln(w, "ready") // probe hung up; nothing to report to
	})
	// The live session table, one line per session: key, group, TTL, then
	// the free-form name last so embedded separators cannot shift fields.
	mux.HandleFunc("/sessions", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, s := range dir.Sessions() {
			_, _ = fmt.Fprintf(w, "%s\t%s\t%d\t%s\n", s.Key(), s.Group, s.TTL, s.Name) // scraper hung up mid-table
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := trace.WriteText(w); err != nil {
			log.Printf("http-debug: trace write: %v", err)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Printf("http-debug: %v", err)
		}
	}()
	log.Printf("http-debug listening on http://%s/metrics", ln.Addr())
	return func() { _ = srv.Close() }, nil
}
