// Command sdrd is a session directory daemon: it announces sessions from
// the command line over SAP, listens for everyone else's announcements,
// allocates addresses with Deterministic Adaptive IPRMA, and runs the
// three-phase clash correction protocol.
//
// By default it joins the well-known SAP group (224.2.127.254:9875), which
// needs multicast-capable networking. With -peers it switches to unicast
// fan-out so a set of daemons can run on hosts (or ports) without
// multicast routing:
//
//	sdrd -origin 10.0.0.1 -listen 127.0.0.1:7001 -peers 127.0.0.1:7002 \
//	     -announce "Team standup" -ttl 15
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/netip"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sessiondir"
	"sessiondir/internal/mcast"
	"sessiondir/internal/session"
	"sessiondir/internal/transport"
)

func main() {
	var (
		origin    = flag.String("origin", "127.0.0.1", "our IPv4 address, stamped on announcements")
		group     = flag.String("group", transport.DefaultSAPGroup.String(), "SAP multicast group")
		port      = flag.Uint("port", transport.DefaultSAPPort, "SAP UDP port")
		peers     = flag.String("peers", "", "comma-separated unicast peers (disables multicast)")
		listen    = flag.String("listen", "", "unicast listen address (with -peers)")
		announce  = flag.String("announce", "", "announce a session with this name")
		ttl       = flag.Uint("ttl", 127, "scope TTL for the announced session")
		duration  = flag.Duration("for", 0, "exit after this long (0 = run until signal)")
		cacheFile = flag.String("cache", "", "persist the session cache to this file across restarts")
		budget    = flag.Int("budget", 0, "outbound bandwidth budget in bits/second (0 = unlimited; SAP convention is 4000)")
	)
	flag.Parse()

	tr, err := openTransport(*group, uint16(*port), *peers, *listen)
	if err != nil {
		log.Fatalf("transport: %v", err)
	}
	if *budget > 0 {
		limited, err := transport.NewRateLimited(tr, *budget, 0, nil)
		if err != nil {
			log.Fatalf("budget: %v", err)
		}
		tr = limited
		log.Printf("outbound budget: %d bits/second", *budget)
	}
	defer tr.Close()

	originAddr, err := netip.ParseAddr(*origin)
	if err != nil {
		log.Fatalf("bad -origin: %v", err)
	}

	dir, err := sessiondir.New(sessiondir.Config{
		Origin:    originAddr,
		Transport: tr,
		OnEvent: func(e sessiondir.Event) {
			if e.Desc != nil {
				log.Printf("%s: %s (%s ttl=%d)", e.Kind, e.Desc.Name, e.Desc.Group, e.Desc.TTL)
			} else {
				log.Printf("%s: %s", e.Kind, e.Key)
			}
		},
	})
	if err != nil {
		log.Fatalf("directory: %v", err)
	}
	defer dir.Close()

	if *cacheFile != "" {
		if f, err := os.Open(*cacheFile); err == nil {
			n, lerr := dir.LoadCache(f)
			_ = f.Close() // read-only handle; nothing to act on

			if lerr != nil {
				log.Printf("cache load: %v", lerr)
			} else {
				log.Printf("loaded %d cached sessions from %s", n, *cacheFile)
			}
		}
		defer func() {
			f, err := os.Create(*cacheFile)
			if err != nil {
				log.Printf("cache save: %v", err)
				return
			}
			if err := dir.SaveCache(f); err != nil {
				log.Printf("cache save: %v", err)
			}
			if err := f.Close(); err != nil {
				log.Printf("cache save: %v", err)
			}
		}()
	}

	if *announce != "" {
		desc, err := dir.CreateSession(&session.Description{
			Name: *announce,
			TTL:  mcast.TTL(*ttl),
			Media: []session.Media{
				{Type: "audio", Port: 20000, Proto: "RTP/AVP", Format: "0"},
			},
			Start: time.Now(),
			Stop:  time.Now().Add(4 * time.Hour),
		})
		if err != nil {
			log.Fatalf("announce: %v", err)
		}
		log.Printf("announcing %q on %s with TTL %d", desc.Name, desc.Group, desc.TTL)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *duration)
		defer cancel()
	}

	// Periodically print the directory contents, like sdr's session list.
	go func() {
		tick := time.NewTicker(10 * time.Second)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				sessions := dir.Sessions()
				m := dir.Metrics()
				log.Printf("---- %d sessions known | sent=%d recv=%d learned=%d moves=%d defenses=%d/%d ----",
					len(sessions), m.AnnouncementsSent, m.PacketsReceived, m.SessionsLearned,
					m.ClashAddressChanges, m.ClashDefensesOwn, m.ClashDefensesThird)
				for _, s := range sessions {
					log.Printf("  %-30q %s ttl=%d from %s", s.Name, s.Group, s.TTL, s.Origin)
				}
			}
		}
	}()

	if err := dir.Run(ctx); err != nil && ctx.Err() == nil {
		log.Fatal(err)
	}
	log.Println("sdrd exiting")
}

func openTransport(group string, port uint16, peers, listen string) (transport.Transport, error) {
	if peers != "" {
		var addrs []netip.AddrPort
		for _, p := range strings.Split(peers, ",") {
			ap, err := netip.ParseAddrPort(strings.TrimSpace(p))
			if err != nil {
				return nil, fmt.Errorf("bad peer %q: %w", p, err)
			}
			addrs = append(addrs, ap)
		}
		tr, err := transport.NewUDP(transport.UDPConfig{Peers: addrs, ListenAddr: listen})
		if err != nil {
			return nil, err
		}
		log.Printf("unicast fan-out on %s to %v", tr.LocalAddr(), addrs)
		return tr, nil
	}
	g, err := netip.ParseAddr(group)
	if err != nil {
		return nil, fmt.Errorf("bad group %q: %w", group, err)
	}
	tr, err := transport.NewUDP(transport.UDPConfig{Group: g, Port: port})
	if err != nil {
		return nil, err
	}
	log.Printf("joined %s:%d", g, port)
	return tr, nil
}
