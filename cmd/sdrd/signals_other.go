//go:build !unix

package main

import "os"

// dumpSignals: no SIGUSR1 outside unix; the dump feature is simply off.
func dumpSignals() []os.Signal {
	return nil
}
