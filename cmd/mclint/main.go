// Command mclint is the repository's determinism & concurrency linter.
// It loads the module's packages with the standard library's go/ast +
// go/types machinery (no external dependencies) and runs the analyzers
// registered in internal/analysis:
//
//	detrand    no wall clock or ambient randomness in deterministic packages
//	maporder   no order-sensitive range-over-map in deterministic packages
//	lockscope  no function calls while a sync mutex is held
//	looplock   no per-iteration mutex acquisition inside loop bodies
//	errdrop    no silently discarded errors on the network paths
//	metricname obs registry metric names are snake_case and unique
//
// Findings print as file:line:col: analyzer: message and make the exit
// status nonzero, so `make lint` gates CI. A finding can be waived at
// its site with a justification comment:
//
//	//mclint:<analyzer> why order/time/the error cannot matter here
//
// Usage:
//
//	mclint [-C dir] [-only a,b | -skip a,b] [-json] [-list]
//
// -json emits the diagnostics as a JSON array for tooling ({"analyzer",
// "file", "line", "col", "message"}); an empty run emits [].
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"sessiondir/internal/analysis"
)

func main() {
	var (
		dir     = flag.String("C", ".", "module root to analyze")
		only    = flag.String("only", "", "comma-separated analyzers to run (default: all)")
		skip    = flag.String("skip", "", "comma-separated analyzers to skip")
		jsonOut = flag.Bool("json", false, "emit diagnostics as a JSON array")
		list    = flag.Bool("list", false, "list the registered analyzers and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	selected, err := analysis.Select(*only, *skip)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mclint:", err)
		os.Exit(2)
	}
	loader, err := analysis.NewLoader(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mclint:", err)
		os.Exit(2)
	}
	diags, err := analysis.RunModule(loader, selected)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mclint:", err)
		os.Exit(2)
	}

	if *jsonOut {
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "mclint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "mclint: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}
