// Command mclint is the repository's determinism & concurrency linter.
// It loads the module's packages with the standard library's go/ast +
// go/types machinery (no external dependencies) and runs the analyzers
// registered in internal/analysis:
//
//	detrand     no wall clock or ambient randomness in deterministic packages
//	maporder    no order-sensitive range-over-map in deterministic packages
//	lockscope   no function calls while a sync mutex is held
//	looplock    no per-iteration mutex acquisition inside loop bodies
//	errdrop     no silently discarded errors on the network paths
//	metricname  obs registry metric names are snake_case and unique
//	buflease    transport.Message buffer ownership: no use after Release,
//	            no double/skipped Release, no escaping Data aliases
//	atomicfield no struct fields mixing sync/atomic and plain access
//
// Findings print as file:line:col: analyzer: message and make the exit
// status nonzero, so `make lint` gates CI. A finding can be waived at
// its site with a justification comment:
//
//	//mclint:<analyzer> why order/time/the error cannot matter here
//
// Usage:
//
//	mclint [-C dir] [-only a,b | -skip a,b] [-format text|json|github] [-list]
//
// -format=json (or the -json alias) emits the diagnostics as a JSON
// array for tooling ({"analyzer", "file", "line", "col", "message"});
// an empty run emits []. -format=github emits GitHub Actions workflow
// commands (::error file=...,line=...::message) so CI findings annotate
// the pull request inline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"sessiondir/internal/analysis"
)

func main() {
	var (
		dir     = flag.String("C", ".", "module root to analyze")
		only    = flag.String("only", "", "comma-separated analyzers to run (default: all)")
		skip    = flag.String("skip", "", "comma-separated analyzers to skip")
		format  = flag.String("format", "text", "output format: text, json, or github")
		jsonOut = flag.Bool("json", false, "shorthand for -format=json")
		list    = flag.Bool("list", false, "list the registered analyzers and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-11s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *jsonOut {
		*format = "json"
	}
	switch *format {
	case "text", "json", "github":
	default:
		fmt.Fprintf(os.Stderr, "mclint: unknown -format %q (want text, json, or github)\n", *format)
		os.Exit(2)
	}

	selected, err := analysis.Select(*only, *skip)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mclint:", err)
		os.Exit(2)
	}
	loader, err := analysis.NewLoader(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mclint:", err)
		os.Exit(2)
	}
	diags, err := analysis.RunModule(loader, selected)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mclint:", err)
		os.Exit(2)
	}

	switch *format {
	case "json":
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "mclint:", err)
			os.Exit(2)
		}
	case "github":
		for _, d := range diags {
			fmt.Println(githubAnnotation(d))
		}
	default:
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if *format != "json" {
			fmt.Fprintf(os.Stderr, "mclint: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

// githubAnnotation renders one finding as a GitHub Actions workflow
// command, which the Actions runner turns into an inline PR annotation.
func githubAnnotation(d analysis.Diagnostic) string {
	return fmt.Sprintf("::error file=%s,line=%d,col=%d,title=mclint/%s::%s",
		escapeProperty(d.File), d.Line, d.Col, escapeProperty(d.Analyzer), escapeData(d.Message))
}

// escapeData escapes the message part of a workflow command.
func escapeData(s string) string {
	r := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A")
	return r.Replace(s)
}

// escapeProperty escapes a property value of a workflow command.
func escapeProperty(s string) string {
	r := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A", ":", "%3A", ",", "%2C")
	return r.Replace(s)
}
