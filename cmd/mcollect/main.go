// Command mcollect reproduces the paper's data pipeline: crawl a multicast
// topology the way mcollect/mwatch crawled the 1998 Mbone (per-router
// queries, some routers silent), clean the result to its largest connected
// component, and write the map the simulations consume.
//
//	mcollect -nodes 1864 -response 0.9 -out mbone.map
//	mktopo -in mbone.map -stats
package main

import (
	"flag"
	"fmt"
	"os"

	"sessiondir/internal/stats"
	"sessiondir/internal/topology"
)

func main() {
	var (
		nodes    = flag.Int("nodes", 1864, "size of the underlying Mbone")
		response = flag.Float64("response", 0.9, "probability a router answers the crawler")
		seed     = flag.Uint64("seed", 1998, "generator and crawl seed")
		monitor  = flag.Int("monitor", 0, "the mwatch daemon's home router")
		outFile  = flag.String("out", "", "write the cleaned map to this file")
	)
	flag.Parse()

	real, err := topology.GenerateMbone(topology.MboneConfig{Nodes: *nodes}, stats.NewRNG(*seed))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	found := topology.Discover(real, topology.DiscoverConfig{
		Monitor:      topology.NodeID(*monitor),
		ResponseProb: *response,
		Seed:         *seed,
	})
	clean, _ := topology.CleanMap(found)

	fmt.Printf("# underlying Mbone: %d routers, %d links\n", real.NumNodes(), real.NumLinks())
	fmt.Printf("# crawl (response=%.0f%%): %d links reported\n", *response*100, found.NumLinks())
	fmt.Printf("# cleaned map: %d routers, %d links, connected=%v\n",
		clean.NumNodes(), clean.NumLinks(), clean.Connected())

	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := topology.Write(f, clean); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("# wrote %s\n", *outFile)
	}
}
