// Command mktopo generates and inspects the topologies the simulations
// run over: the synthetic Mbone (the stand-in for the 1998 mcollect map)
// and Doar-style grid graphs.
//
// Usage:
//
//	mktopo -kind mbone -nodes 1864 -stats
//	mktopo -kind grid -nodes 3200 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"

	"sessiondir/internal/mcast"
	"sessiondir/internal/stats"
	"sessiondir/internal/topology"
)

func main() {
	var (
		kind    = flag.String("kind", "mbone", "topology kind: mbone | grid")
		nodes   = flag.Int("nodes", 1864, "number of routers")
		seed    = flag.Uint64("seed", 1998, "generator seed")
		dump    = flag.Bool("dump", false, "dump the link list")
		doStats = flag.Bool("stats", true, "print hop-count statistics")
		outFile = flag.String("out", "", "write the topology to this file")
		inFile  = flag.String("in", "", "load a topology file instead of generating")
		audit   = flag.Bool("audit", false, "audit for Figure-3 scope/partition hazards (IPR 3-band)")
	)
	flag.Parse()

	rng := stats.NewRNG(*seed)
	var g *topology.Graph
	var err error
	switch {
	case *inFile != "":
		var f *os.File
		if f, err = os.Open(*inFile); err == nil {
			g, err = topology.Read(f)
			f.Close()
		}
	case *kind == "mbone":
		g, err = topology.GenerateMbone(topology.MboneConfig{Nodes: *nodes}, rng)
	case *kind == "grid":
		g, err = topology.GenerateGrid(topology.GridConfig{Nodes: *nodes, RedundantLinks: true}, rng)
	default:
		fmt.Fprintf(os.Stderr, "unknown kind %q (mbone | grid)\n", *kind)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := topology.Write(f, g); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("# wrote %s\n", *outFile)
	}

	fmt.Printf("# %s topology: %d nodes, %d links, connected=%v\n",
		*kind, g.NumNodes(), g.NumLinks(), g.Connected())

	if *dump {
		for i := 0; i < g.NumNodes(); i++ {
			for _, e := range g.Neighbors(topology.NodeID(i)) {
				if int(e.To) < i {
					continue // print each undirected link once
				}
				fmt.Printf("link %s -- %s metric=%d threshold=%d delay=%.2fms\n",
					g.Nodes[i].Name, g.Nodes[e.To].Name, e.Metric, e.Threshold, e.Delay)
			}
		}
	}

	if *audit {
		sample := 40
		var sites []topology.NodeID
		if g.NumNodes() > sample {
			perm := rng.Perm(g.NumNodes())
			for i := 0; i < sample; i++ {
				sites = append(sites, topology.NodeID(perm[i]))
			}
		}
		hazards := topology.AuditScopes(g, topology.AuditConfig{
			TTLs: []mcast.TTL{1, 15, 31, 47, 63, 127, 191},
			PartitionOf: func(t mcast.TTL) int {
				switch {
				case t < 15:
					return 0
				case t < 64:
					return 1
				default:
					return 2
				}
			},
			Sites:      sites,
			MaxHazards: 20,
		})
		fmt.Printf("# scope audit (IPR 3-band partitioning): %d hazards\n", len(hazards))
		for _, h := range hazards {
			fmt.Printf("hazard: %s (%s vs %s)\n", h,
				g.Nodes[h.AllocSite].Name, g.Nodes[h.HiddenSite].Name)
		}
	}

	if *doStats {
		sample := 100
		if g.NumNodes() < sample {
			sample = 0
		}
		var sources []topology.NodeID
		if sample > 0 {
			perm := rng.Perm(g.NumNodes())
			for i := 0; i < sample; i++ {
				sources = append(sources, topology.NodeID(perm[i]))
			}
			fmt.Printf("# hop stats over %d sampled sources\n", sample)
		} else {
			fmt.Println("# hop stats over all sources")
		}
		fmt.Println("# TTL  mostfreq  mean   max")
		for _, row := range topology.HopStatsForTTLs(g, []mcast.TTL{15, 47, 63, 127, 255}, sources) {
			fmt.Printf("%5d  %8d  %5.1f  %4d\n", row.TTL, row.MostFrequentHop, row.MeanHop, row.MaxHop)
		}
	}
}
