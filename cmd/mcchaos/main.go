// Command mcchaos orchestrates process-level chaos against a fleet of
// real sdrd daemons: it wires them together through the deterministic
// UDP fault relay (internal/relay), applies a seeded fault schedule —
// flash-crowd announcement bursts, SIGKILL and restart, SIGSTOP/SIGCONT
// freezes, network partition and heal — and asserts the recovery
// invariants the session directory protocol promises:
//
//   - converged: after healing, every honest session is visible on
//     every surviving daemon (ghosts of killed incarnations tolerated);
//   - clash-response and clash-distinct: the clash machinery ran and
//     owners ended on pairwise-distinct groups;
//   - crash-recovery: a SIGKILLed daemon restarts from its checkpoint
//     cache with listened state intact;
//   - degradation and degradation-decay: overload tiers engage under
//     the crowd and relax once it goes stale;
//   - health and pool-leak: probes stay green and no pooled receive
//     buffers leak;
//   - storage-faults: a daemon whose journaled cache runs over an
//     injected-fault disk (-storage-faults) counts checkpoint/append
//     errors, may degrade /readyz — and nothing else: it keeps serving,
//     stays live, and never quarantines a file over a torn write.
//
// The verdict log is seed-replayable: every line is a function of the
// seed's draws and invariant outcomes only, so two runs with the same
// -seed and -schedule write byte-identical verdicts. Diagnostics with
// run-specific detail (ports, counts, timings) go to stderr instead.
//
// Exit codes: 0 all invariants held, 1 an invariant failed, 2 setup
// error (the run could not be carried out).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		n         = flag.Int("n", 4, "daemon fleet size (minimum 2)")
		seed      = flag.Uint64("seed", 41, "master seed for relay faults and schedule draws")
		scName    = flag.String("schedule", "quick", "fault schedule: quick (CI, ~1 min) or extended (nightly)")
		sdrdBin   = flag.String("sdrd", "", "sdrd binary to spawn (empty = go build ./cmd/sdrd into the artifacts dir)")
		artifacts = flag.String("artifacts", "", "directory for daemon logs, caches and the verdict (empty = temp dir)")
	)
	flag.Parse()
	log.SetFlags(log.Ltime | log.Lmicroseconds)

	if *n < 2 {
		log.Printf("mcchaos: -n %d: need at least 2 daemons", *n)
		return 2
	}
	if *seed == 0 {
		log.Printf("mcchaos: -seed 0 is reserved; pick a nonzero seed so the run is replayable")
		return 2
	}
	var sc schedule
	switch *scName {
	case "quick":
		sc = quickSchedule()
	case "extended":
		sc = extendedSchedule()
	default:
		log.Printf("mcchaos: unknown -schedule %q (quick or extended)", *scName)
		return 2
	}

	dir := *artifacts
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "mcchaos-"); err != nil {
			log.Printf("mcchaos: artifacts dir: %v", err)
			return 2
		}
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Printf("mcchaos: artifacts dir: %v", err)
		return 2
	}
	log.Printf("artifacts in %s", dir)

	bin := *sdrdBin
	if bin == "" {
		bin = filepath.Join(dir, "sdrd")
		log.Printf("building sdrd into %s", bin)
		build := exec.Command("go", "build", "-o", bin, "./cmd/sdrd")
		build.Stdout, build.Stderr = os.Stderr, os.Stderr
		if err := build.Run(); err != nil {
			log.Printf("mcchaos: building sdrd (run from the repo root or pass -sdrd): %v", err)
			return 2
		}
	}

	v, err := newVerdict(filepath.Join(dir, "verdict.log"))
	if err != nil {
		log.Printf("mcchaos: %v", err)
		return 2
	}
	defer v.close()

	ok, err := sc.run(v, *n, *seed, bin, dir)
	if err != nil {
		log.Printf("mcchaos: setup: %v", err)
		return 2
	}
	if !ok {
		v.logf("verdict FAIL")
		log.Printf("FAIL (daemon logs and verdict in %s)", dir)
		return 1
	}
	v.logf("verdict PASS")
	log.Printf("PASS (verdict in %s)", dir)
	return 0
}

// verdict is the seed-replayable run record: phases, invariant
// outcomes, final verdict. It is written both to stdout and to
// verdict.log in the artifacts directory.
type verdict struct {
	mu     sync.Mutex
	w      io.Writer
	file   *os.File
	failed bool
}

func newVerdict(path string) (*verdict, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("verdict log: %w", err)
	}
	return &verdict{w: io.MultiWriter(os.Stdout, f), file: f}, nil
}

// logf writes one verdict line. Callers must keep arguments
// deterministic: seed draws, fixed schedule parameters and invariant
// outcomes only.
func (v *verdict) logf(format string, args ...any) {
	v.mu.Lock()
	defer v.mu.Unlock()
	fmt.Fprintf(v.w, format+"\n", args...)
}

// invariant records one invariant outcome as a verdict line.
func (v *verdict) invariant(name string, ok bool) {
	state := "ok"
	if !ok {
		state = "FAIL"
		v.mu.Lock()
		v.failed = true
		v.mu.Unlock()
	}
	v.logf("invariant %s %s", name, state)
}

func (v *verdict) allOK() bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	return !v.failed
}

func (v *verdict) close() {
	if err := v.file.Close(); err != nil && !strings.Contains(err.Error(), "file already closed") {
		log.Printf("verdict log close: %v", err)
	}
}
