package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"net/netip"
	"strings"
	"syscall"
	"time"

	"sessiondir/internal/relay"
	"sessiondir/internal/sap"
	"sessiondir/internal/session"
	"sessiondir/internal/stats"
)

// A schedule is one scripted chaos scenario. Every randomized choice it
// makes (kill victim, partition split) is drawn from the master seed in
// a fixed order, and every line it writes to the verdict log is a pure
// function of those draws plus invariant outcomes — never of ports,
// PIDs, timings or metric values — so two runs with the same seed
// produce byte-identical verdicts.
type schedule struct {
	name          string
	crowdSessions int           // flash-crowd announcements injected
	crowdWaves    int           // injection waves (later waves hit level-2 sampling)
	waveGap       time.Duration // pause between waves
	freezeFor     time.Duration // SIGSTOP one daemon this long (0 = skip)
	partitionHold time.Duration // how long the partition stays up
	convergeWait  time.Duration // post-heal convergence deadline
	baseline      relay.LinkProfile
}

// quickSchedule is the CI tier: bounded around a minute end to end.
func quickSchedule() schedule {
	return schedule{
		name:          "quick",
		crowdSessions: 150,
		crowdWaves:    2,
		waveGap:       1500 * time.Millisecond,
		partitionHold: 8 * time.Second,
		convergeWait:  25 * time.Second,
		baseline: relay.LinkProfile{
			Loss: 0.05, Duplicate: 0.02, Corrupt: 0.01,
			DelayMin: time.Millisecond, DelayMax: 10 * time.Millisecond,
		},
	}
}

// extendedSchedule is the nightly tier: a bigger crowd, a SIGSTOP
// freeze, a longer partition, rougher links.
func extendedSchedule() schedule {
	return schedule{
		name:          "extended",
		crowdSessions: 400,
		crowdWaves:    3,
		waveGap:       1500 * time.Millisecond,
		freezeFor:     5 * time.Second,
		partitionHold: 15 * time.Second,
		convergeWait:  45 * time.Second,
		baseline: relay.LinkProfile{
			Loss: 0.10, Duplicate: 0.05, Corrupt: 0.02,
			DelayMin: time.Millisecond, DelayMax: 25 * time.Millisecond,
		},
	}
}

// diskFaultProfile is the fault schedule for the disk-fault daemon:
// write-path probabilities high enough that checkpoint compactions and
// journal appends fail repeatedly over a run, while the read and
// metadata paths stay clean so startup recovery always succeeds.
const diskFaultProfile = "write=0.08,short=0.05,nospace=0.04,sync=0.2"

// poolLeakSlack bounds receive buffers legitimately in flight at scrape
// time: up to three kernel batches checked out by the read path
// (transport readBatchSize is 32). Anything beyond that is a leak.
const poolLeakSlack = 96

// injector pushes crafted SAP announcements straight at daemon listen
// sockets, bypassing the relay: injected traffic is part of the script,
// so it must arrive deterministically, unfaulted.
type injector struct {
	conn *net.UDPConn
}

func newInjector() (*injector, error) {
	c, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, err
	}
	return &injector{conn: c}, nil
}

func (in *injector) close() { _ = in.conn.Close() }

// announce marshals desc and sends copies of it to every target.
func (in *injector) announce(desc *session.Description, targets []netip.AddrPort, copies int) error {
	payload, err := desc.MarshalSDP()
	if err != nil {
		return fmt.Errorf("inject %q: %w", desc.Name, err)
	}
	pkt := sap.Packet{
		Type:      sap.Announce,
		MsgIDHash: sap.MsgIDHashOf(payload),
		Origin:    desc.Origin,
		Payload:   payload,
	}
	buf, err := pkt.Marshal(nil)
	if err != nil {
		return fmt.Errorf("inject %q: %w", desc.Name, err)
	}
	for _, t := range targets {
		for c := 0; c < copies; c++ {
			if _, err := in.conn.WriteToUDPAddrPort(buf, t); err != nil {
				return fmt.Errorf("inject %q to %s: %w", desc.Name, t, err)
			}
		}
	}
	return nil
}

// crowdDesc builds the i-th flash-crowd session: unique origin, unique
// administratively-scoped group (239.255/16) disjoint from the SAP
// dynamic block the daemons allocate from, so crowd sessions never
// clash with daemon-owned ones and perturb only cache occupancy.
func crowdDesc(i int) *session.Description {
	return &session.Description{
		ID:      uint64(10_000 + i),
		Version: 1,
		Origin:  netip.AddrFrom4([4]byte{10, 2, byte(i / 250), byte(1 + i%250)}),
		Name:    fmt.Sprintf("crowd-%d", i),
		Group:   netip.AddrFrom4([4]byte{239, 255, byte(i >> 8), byte(i)}),
		TTL:     15,
		Media:   []session.Media{{Type: "audio", Port: 5004, Proto: "RTP/AVP", Format: "0"}},
	}
}

// ctlCmd sends one relay control command and returns the reply,
// retrying because the control protocol is stateless resend-to-repair.
func ctlCmd(ctl netip.AddrPort, cmd string) (string, error) {
	c, err := net.DialUDP("udp4", nil, net.UDPAddrFromAddrPort(ctl))
	if err != nil {
		return "", err
	}
	defer func() { _ = c.Close() }()
	buf := make([]byte, 4096)
	for attempt := 0; attempt < 3; attempt++ {
		if _, err = c.Write([]byte(cmd)); err != nil {
			return "", err
		}
		if err = c.SetReadDeadline(time.Now().Add(time.Second)); err != nil {
			return "", err
		}
		var n int
		if n, err = c.Read(buf); err == nil {
			reply := string(buf[:n])
			if strings.HasPrefix(reply, "ERR") {
				return reply, fmt.Errorf("relay control: %s", reply)
			}
			return reply, nil
		}
	}
	return "", fmt.Errorf("relay control %q: no reply: %w", cmd, err)
}

// run executes the schedule against a fresh fleet and returns whether
// every invariant held. Setup failures return an error (exit code 2
// territory); invariant failures return (false, nil) after writing a
// deterministic FAIL verdict.
func (sc schedule) run(v *verdict, n int, seed uint64, sdrdBin, artifacts string) (bool, error) {
	v.logf("mcchaos schedule=%s n=%d seed=%d", sc.name, n, seed)
	rng := stats.NewRNG(seed)

	// The relay and its control server. The orchestrator drives
	// partitions through the UDP control protocol — the same surface an
	// external operator would use — rather than in-process calls.
	r, err := relay.New(relay.Config{Seed: seed})
	if err != nil {
		return false, err
	}
	defer func() { _ = r.Close() }()
	ctl, err := r.ServeControl()
	if err != nil {
		return false, err
	}

	// Reserve each slot's sockets, attach it to the relay, spawn it.
	f := newFleet(sdrdBin, artifacts, seed, n)
	defer f.stopAll()

	// Disk-fault phase: one daemon (never 0, the clash anchor; also never
	// the later freeze or kill victim, so the fault domains stay disjoint)
	// runs its journaled cache over an injected-fault disk for the whole
	// run. The spec's probabilities hit the write path only — recovery
	// stays clean, so the daemon always comes up — and its seed is mixed
	// from the master seed, keeping the verdict replayable. Skipped when
	// the fleet is too small to keep the roles distinct.
	diskIdx := -1
	if n >= 4 || (sc.freezeFor == 0 && n >= 3) {
		diskIdx = pickNot(rng, n, 0)
		f.ds[diskIdx].storageFaults = fmt.Sprintf("seed=%d,%s", mixSeed(seed, 255, 0), diskFaultProfile)
		v.logf("phase disk-faults daemon=%d spec=%s", diskIdx, diskFaultProfile)
	}
	var udpTargets []netip.AddrPort
	for _, d := range f.ds {
		if d.listen, err = reservePort("udp"); err != nil {
			return false, err
		}
		if d.http, err = reservePort("tcp"); err != nil {
			return false, err
		}
		if d.ingress, _, err = r.Attach(d.listen); err != nil {
			return false, err
		}
		udpTargets = append(udpTargets, d.listen)
	}
	for _, d := range f.ds {
		if err := f.spawn(d); err != nil {
			return false, err
		}
	}
	v.logf("phase spawn daemons=%d", n)
	for _, d := range f.ds {
		if err := f.waitReady(d, 10*time.Second); err != nil {
			return false, err
		}
	}

	// Record each daemon's own session before any chaos; these keys are
	// the "honest sessions" the convergence invariant tracks.
	ownKey := make([]string, n)
	ghosts := make(map[string]bool)
	for _, d := range f.ds {
		row, ok, err := waitOwnRow(f, d, ghosts, 5*time.Second)
		if err != nil || !ok {
			return false, fmt.Errorf("daemon %d: own session not visible: %v", d.idx, err)
		}
		ownKey[d.idx] = row.key
	}

	b := sc.baseline
	r.SetLink(-1, -1, b)
	v.logf("phase baseline loss=%g dup=%g corrupt=%g delay=%s:%s",
		b.Loss, b.Duplicate, b.Corrupt, b.DelayMin, b.DelayMax)

	inj, err := newInjector()
	if err != nil {
		return false, err
	}
	defer inj.close()

	// Clash injection: a forged third-party session squatting daemon 0's
	// group forces the clash machinery to respond — defend (phase 1) or
	// move (phase 2); either proves the protocol ran.
	row0, ok, err := f.ownRow(f.ds[0], ghosts)
	if err != nil || !ok {
		return false, fmt.Errorf("daemon 0 own session lost: %v", err)
	}
	clashGroup, err := netip.ParseAddr(row0.group)
	if err != nil {
		return false, fmt.Errorf("daemon 0 group %q: %w", row0.group, err)
	}
	clasher := &session.Description{
		ID: 77, Version: 1,
		Origin: netip.MustParseAddr("10.99.0.1"),
		Name:   "clasher",
		Group:  clashGroup,
		TTL:    15,
		Media:  []session.Media{{Type: "audio", Port: 5004, Proto: "RTP/AVP", Format: "0"}},
	}
	if err := inj.announce(clasher, udpTargets, 3); err != nil {
		return false, err
	}
	v.logf("phase clash-inject target=0 copies=3")

	// Flash crowd: waves of unknown sessions blow the 64-session budget.
	// Wave 1 fills the cache; the scrape between waves recomputes the
	// degradation tier, so wave 2+ arrivals meet level-2 admission
	// sampling and the shed counters move.
	v.logf("phase flash-crowd sessions=%d waves=%d", sc.crowdSessions, sc.crowdWaves)
	perWave := (sc.crowdSessions + sc.crowdWaves - 1) / sc.crowdWaves
	peaks := make([]float64, n)
	next := 0
	for w := 0; w < sc.crowdWaves && next < sc.crowdSessions; w++ {
		if w > 0 {
			time.Sleep(sc.waveGap)
		}
		for i := 0; i < perWave && next < sc.crowdSessions; i++ {
			if err := inj.announce(crowdDesc(next), udpTargets, 1); err != nil {
				return false, err
			}
			next++
		}
		scrapePeaks(f, peaks)
	}
	pollPeaks(f, peaks, 3*time.Second)
	degradeOK := true
	for i, p := range peaks {
		if p < 2 {
			degradeOK = false
			log.Printf("daemon %d: degradation peaked at %g, want 2", i, p)
		}
	}
	for _, d := range f.ds {
		m, err := f.metrics(d)
		if err != nil || m["dir_degraded_learns_shed_total"] < 1 {
			degradeOK = false
			log.Printf("daemon %d: no level-2 admission sheds (err=%v)", d.idx, err)
		}
	}
	v.invariant("degradation", degradeOK)

	// Optional freeze: SIGSTOP a bystander through the burst's tail,
	// then SIGCONT; it must rejoin without help.
	var frozen *daemon
	if sc.freezeFor > 0 {
		fi := pickNot(rng, n, 0)
		for fi == diskIdx {
			fi = pickNot(rng, n, 0)
		}
		frozen = f.ds[fi]
		v.logf("phase freeze daemon=%d signal=SIGSTOP", frozen.idx)
		if err := frozen.signal(syscall.SIGSTOP); err != nil {
			return false, err
		}
	}

	// Kill the victim (never daemon 0 — it anchors the clash check, never
	// the frozen bystander, and never the disk-fault daemon — its cache
	// may legitimately be stale, which would fog the crash-recovery
	// invariant) without ceremony, then partition the survivors while it
	// is down.
	victimIdx := pickNot(rng, n, 0)
	for victimIdx == diskIdx || (frozen != nil && victimIdx == frozen.idx) {
		victimIdx = pickNot(rng, n, 0)
	}
	victim := f.ds[victimIdx]
	ghosts[ownKey[victimIdx]] = true
	v.logf("phase kill victim=%d signal=SIGKILL", victimIdx)
	if err := victim.signal(syscall.SIGKILL); err != nil {
		return false, err
	}
	if err := victim.waitExit(5 * time.Second); err != nil {
		return false, err
	}

	groups := splitGroups(rng, n)
	spec := formatGroups(groups)
	v.logf("phase partition groups=%s", spec)
	if _, err := ctlCmd(ctl, "partition "+spec); err != nil {
		return false, err
	}
	partitionOK := r.SeveredLinks() > 0
	v.invariant("partition-active", partitionOK)

	if frozen != nil {
		time.Sleep(sc.freezeFor)
		v.logf("phase thaw daemon=%d signal=SIGCONT", frozen.idx)
		if err := frozen.signal(syscall.SIGCONT); err != nil {
			return false, err
		}
	} else {
		time.Sleep(2 * time.Second)
	}

	// Restart the victim mid-partition from its checkpoint cache. The
	// new incarnation's mixed seed allocates a fresh group, so it does
	// not mirror-clash with its own ghost in survivor caches.
	victim.incarnation++
	v.logf("phase restart victim=%d incarnation=%d", victimIdx, victim.incarnation)
	if err := f.spawn(victim); err != nil {
		return false, err
	}
	if err := f.waitReady(victim, 10*time.Second); err != nil {
		return false, err
	}
	m, err := f.metrics(victim)
	recoveryOK := err == nil && m["dir_cache_sessions"] > 0
	if !recoveryOK {
		log.Printf("victim %d: cache restore empty (cache_sessions=%g err=%v)",
			victimIdx, m["dir_cache_sessions"], err)
	}
	v.invariant("crash-recovery", recoveryOK)
	row, ok, err := waitOwnRow(f, victim, ghosts, 5*time.Second)
	if err != nil || !ok {
		return false, fmt.Errorf("victim %d: new own session not visible: %v", victimIdx, err)
	}
	ownKey[victimIdx] = row.key

	time.Sleep(sc.partitionHold)
	if _, err := ctlCmd(ctl, "heal"); err != nil {
		return false, err
	}
	v.logf("phase heal")

	// Post-heal convergence: every live daemon must list every honest
	// session (ghosts of dead incarnations tolerated), and the owners'
	// groups must have ended up pairwise distinct.
	converged := pollConverged(f, ownKey, sc.convergeWait)
	v.invariant("converged", converged)

	distinct := true
	seenGroup := make(map[string]int)
	for _, d := range f.ds {
		r, ok, err := f.ownRow(d, ghosts)
		if err != nil || !ok {
			distinct = false
			log.Printf("daemon %d: own row missing for distinctness check (err=%v)", d.idx, err)
			continue
		}
		if prev, dup := seenGroup[r.group]; dup {
			distinct = false
			log.Printf("daemons %d and %d share group %s", prev, d.idx, r.group)
		}
		seenGroup[r.group] = d.idx
	}
	v.invariant("clash-distinct", distinct)

	m0, err := f.metrics(f.ds[0])
	clashOK := err == nil &&
		m0["dir_clash_defenses_own_total"]+m0["dir_clash_moves_total"] >= 1
	if !clashOK {
		log.Printf("daemon 0: no clash response (defenses=%g moves=%g err=%v)",
			m0["dir_clash_defenses_own_total"], m0["dir_clash_moves_total"], err)
	}
	v.invariant("clash-response", clashOK)

	// The crowd went quiet long ago and -stale-after is 4s, so the
	// degradation tier must have decayed back to normal everywhere.
	decayOK := true
	healthOK := true
	leakOK := true
	for _, d := range f.ds {
		m, err := f.metrics(d)
		if err != nil {
			decayOK, healthOK, leakOK = false, false, false
			log.Printf("daemon %d: final scrape: %v", d.idx, err)
			continue
		}
		if lvl := m["shed_degradation_level"]; lvl != 0 {
			decayOK = false
			log.Printf("daemon %d: degradation level %g at end, want 0", d.idx, lvl)
		}
		if body, code, err := f.get(d, "/healthz"); err != nil || code != http.StatusOK || strings.TrimSpace(body) != "ok" {
			healthOK = false
			log.Printf("daemon %d: /healthz %d %q err=%v", d.idx, code, body, err)
		}
		// The disk-fault daemon may legitimately report 503
		// storage-degraded on /readyz after persistent checkpoint
		// failures; it must stay alive, not ready.
		if d.idx != diskIdx {
			if _, code, err := f.get(d, "/readyz"); err != nil || code != http.StatusOK {
				healthOK = false
				log.Printf("daemon %d: /readyz %d err=%v", d.idx, code, err)
			}
		}
		leased := m["udp_rx_pool_hits_total"] + m["udp_rx_pool_misses_total"] - m["udp_rx_pool_returns_total"]
		if leased < 0 || leased > poolLeakSlack {
			leakOK = false
			log.Printf("daemon %d: %g pooled buffers unreturned (slack %d)", d.idx, leased, poolLeakSlack)
		}
	}
	v.invariant("degradation-decay", decayOK)
	v.invariant("health", healthOK)
	v.invariant("pool-leak", leakOK)

	// The disk-fault daemon must have actually hit injected failures
	// (checkpoint errors counted), kept serving the protocol (it already
	// passed the converged and healthz checks above), and quarantined
	// nothing — injected write faults tear files, they do not corrupt
	// checksummed prefixes.
	if diskIdx >= 0 {
		md, err := f.metrics(f.ds[diskIdx])
		storageOK := err == nil &&
			md["cache_checkpoint_errors_total"]+md["cache_journal_append_errors_total"] >= 1 &&
			md["cache_recovery_corrupt_total"] == 0
		if !storageOK {
			log.Printf("daemon %d: disk-fault outcome (checkpoint-errors=%g append-errors=%g corrupt=%g err=%v)",
				diskIdx, md["cache_checkpoint_errors_total"], md["cache_journal_append_errors_total"],
				md["cache_recovery_corrupt_total"], err)
		}
		v.invariant("storage-faults", storageOK)
	}

	s := r.Stats()
	log.Printf("relay: forwarded=%d dropped=%d duplicated=%d corrupted=%d delayed=%d partition_drops=%d",
		s.Forwarded, s.Dropped, s.Duplicated, s.Corrupted, s.Delayed, s.PartitionDrops)
	return v.allOK(), nil
}

// pickNot draws a daemon index uniformly from [0, n) excluding `not`.
func pickNot(rng *stats.RNG, n, not int) int {
	idx := rng.IntN(n - 1)
	if idx >= not {
		idx++
	}
	return idx
}

// splitGroups permutes the indices with the seeded RNG and halves them.
func splitGroups(rng *stats.RNG, n int) [][]int {
	perm := rng.Perm(n)
	half := (n + 1) / 2
	a, b := append([]int(nil), perm[:half]...), append([]int(nil), perm[half:]...)
	sortInts(a)
	sortInts(b)
	return [][]int{a, b}
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// formatGroups renders groups in the control protocol's syntax, e.g.
// "0,2|1,3".
func formatGroups(groups [][]int) string {
	var parts []string
	for _, g := range groups {
		var toks []string
		for _, idx := range g {
			toks = append(toks, fmt.Sprintf("%d", idx))
		}
		parts = append(parts, strings.Join(toks, ","))
	}
	return strings.Join(parts, "|")
}

// waitOwnRow polls until the daemon's own session appears in its table.
func waitOwnRow(f *fleet, d *daemon, ghosts map[string]bool, timeout time.Duration) (sessRow, bool, error) {
	deadline := time.Now().Add(timeout)
	for {
		row, ok, err := f.ownRow(d, ghosts)
		if ok {
			return row, true, nil
		}
		if time.Now().After(deadline) {
			return sessRow{}, false, err
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// scrapePeaks samples every daemon's degradation gauge once, folding it
// into the running per-daemon peak. The scrape itself recomputes the
// tier daemon-side, which is exactly what a monitoring stack would do.
func scrapePeaks(f *fleet, peaks []float64) {
	for i, d := range f.ds {
		m, err := f.metrics(d)
		if err != nil {
			continue
		}
		if lvl := m["shed_degradation_level"]; lvl > peaks[i] {
			peaks[i] = lvl
		}
	}
}

// pollPeaks keeps sampling peaks for the window.
func pollPeaks(f *fleet, peaks []float64, window time.Duration) {
	deadline := time.Now().Add(window)
	for time.Now().Before(deadline) {
		scrapePeaks(f, peaks)
		done := true
		for _, p := range peaks {
			if p < 2 {
				done = false
			}
		}
		if done {
			return
		}
		time.Sleep(150 * time.Millisecond)
	}
}

// pollConverged waits until every daemon's session table contains every
// honest session key.
func pollConverged(f *fleet, ownKey []string, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if convergedOnce(f, ownKey) {
			return true
		}
		if time.Now().After(deadline) {
			// One last diagnostic pass so the log says who is missing what.
			for _, d := range f.ds {
				rows, err := f.sessions(d)
				if err != nil {
					log.Printf("daemon %d: scrape: %v", d.idx, err)
					continue
				}
				have := make(map[string]bool, len(rows))
				for _, r := range rows {
					have[r.key] = true
				}
				for k, key := range ownKey {
					if !have[key] {
						log.Printf("daemon %d: missing honest session %s (daemon %d)", d.idx, key, k)
					}
				}
			}
			return false
		}
		time.Sleep(500 * time.Millisecond)
	}
}

func convergedOnce(f *fleet, ownKey []string) bool {
	for _, d := range f.ds {
		rows, err := f.sessions(d)
		if err != nil {
			return false
		}
		have := make(map[string]bool, len(rows))
		for _, r := range rows {
			have[r.key] = true
		}
		for _, key := range ownKey {
			if !have[key] {
				return false
			}
		}
	}
	return true
}
