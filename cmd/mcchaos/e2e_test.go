package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
)

// Process-level chaos e2e: build sdrd and mcchaos with the race
// detector, run the quick schedule twice with one seed, and require
// both runs to pass with byte-identical verdict logs — the seed-replay
// contract across real process boundaries.

var (
	chaosBuildOnce sync.Once
	chaosSdrd      string
	chaosBin       string
	chaosBuildErr  error
)

func builtChaos(t *testing.T) (sdrd, mcchaos string) {
	t.Helper()
	chaosBuildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "mcchaos-e2e-")
		if err != nil {
			chaosBuildErr = err
			return
		}
		chaosSdrd = filepath.Join(dir, "sdrd")
		chaosBin = filepath.Join(dir, "mcchaos")
		for bin, pkg := range map[string]string{chaosSdrd: "../sdrd", chaosBin: "."} {
			out, err := exec.Command("go", "build", "-race", "-o", bin, pkg).CombinedOutput()
			if err != nil {
				chaosBuildErr = fmt.Errorf("go build -race %s: %v\n%s", pkg, err, out)
				return
			}
		}
	})
	if chaosBuildErr != nil {
		t.Fatal(chaosBuildErr)
	}
	return chaosSdrd, chaosBin
}

// runChaos executes one mcchaos run and returns its verdict log.
// Artifacts (daemon logs, caches, verdict) live in a test temp dir, or
// under PROC_CHAOS_ARTIFACTS when set so CI can upload them on failure.
func runChaos(t *testing.T, sdrd, mcchaos, schedule string, seed uint64) []byte {
	t.Helper()
	artifacts := artifactsDir(t, schedule, seed)
	cmd := exec.Command(mcchaos,
		"-sdrd", sdrd,
		"-schedule", schedule,
		"-seed", fmt.Sprint(seed),
		"-artifacts", artifacts,
	)
	out, err := cmd.CombinedOutput()
	if err != nil {
		dumpDaemonLogs(t, artifacts)
		t.Fatalf("mcchaos -schedule %s -seed %d: %v\n%s", schedule, seed, err, out)
	}
	verdict, err := os.ReadFile(filepath.Join(artifacts, "verdict.log"))
	if err != nil {
		t.Fatal(err)
	}
	return verdict
}

var artifactSeq int

func artifactsDir(t *testing.T, schedule string, seed uint64) string {
	t.Helper()
	root := os.Getenv("PROC_CHAOS_ARTIFACTS")
	if root == "" {
		return t.TempDir()
	}
	artifactSeq++
	dir := filepath.Join(root, fmt.Sprintf("%s-seed%d-run%d", schedule, seed, artifactSeq))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	return dir
}

func dumpDaemonLogs(t *testing.T, artifacts string) {
	t.Helper()
	logs, _ := filepath.Glob(filepath.Join(artifacts, "daemon-*.log"))
	for _, p := range logs {
		if b, err := os.ReadFile(p); err == nil {
			t.Logf("%s:\n%s", filepath.Base(p), b)
		}
	}
}

// TestProcChaosQuickSeedReplay is the acceptance gate: a 4-daemon fleet
// under -race survives SIGKILL+restart and a partition/heal, and two
// same-seed runs produce identical verdict logs.
func TestProcChaosQuickSeedReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos quick tier takes ~1 min; skipped in -short")
	}
	sdrd, mcchaos := builtChaos(t)
	first := runChaos(t, sdrd, mcchaos, "quick", 41)
	second := runChaos(t, sdrd, mcchaos, "quick", 41)
	if string(first) != string(second) {
		t.Fatalf("same-seed verdicts differ:\n--- first ---\n%s--- second ---\n%s", first, second)
	}
}

// TestProcChaosExtended runs the nightly schedule; gated by env because
// it takes several minutes under the race detector.
func TestProcChaosExtended(t *testing.T) {
	if os.Getenv("PROC_CHAOS_EXTENDED") == "" {
		t.Skip("set PROC_CHAOS_EXTENDED=1 to run the nightly chaos tier")
	}
	sdrd, mcchaos := builtChaos(t)
	first := runChaos(t, sdrd, mcchaos, "extended", 41)
	second := runChaos(t, sdrd, mcchaos, "extended", 41)
	if string(first) != string(second) {
		t.Fatalf("same-seed verdicts differ:\n--- first ---\n%s--- second ---\n%s", first, second)
	}
}
