package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/netip"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"
)

// The fleet layer: spawning, signalling and scraping real sdrd
// processes. Everything here talks to daemons the way a supervisor
// would — argv, signals, and the HTTP debug surface — never through
// in-process shortcuts, so the harness exercises the same machinery an
// operator's deployment does.

// daemon is one sdrd process slot. The slot (index, origin, listen
// address, relay attachment, cache file) outlives individual processes:
// a restart reuses the slot with a bumped incarnation.
type daemon struct {
	idx     int
	origin  netip.Addr
	listen  netip.AddrPort // the daemon's -listen UDP socket
	ingress netip.AddrPort // relay ingress this daemon sends to (-peers)
	http    netip.AddrPort // -http-debug address

	cacheFile   string
	logPath     string
	incarnation int
	// storageFaults, when set, is passed through as -storage-faults so
	// this slot's journaled cache runs over an injected-fault disk.
	storageFaults string

	cmd     *exec.Cmd
	logFile *os.File
	exited  chan error
}

// fleet manages the daemon slots of one chaos run.
type fleet struct {
	sdrd      string // sdrd binary path
	artifacts string
	master    uint64 // master seed; per-daemon seeds are mixed from it
	ds        []*daemon
	client    *http.Client
}

func newFleet(sdrd, artifacts string, master uint64, n int) *fleet {
	f := &fleet{
		sdrd:      sdrd,
		artifacts: artifacts,
		master:    master,
		client:    &http.Client{Timeout: 2 * time.Second},
	}
	for i := 0; i < n; i++ {
		f.ds = append(f.ds, &daemon{
			idx:       i,
			origin:    netip.AddrFrom4([4]byte{10, 0, byte(i), 1}),
			cacheFile: filepath.Join(artifacts, fmt.Sprintf("daemon-%d.cache", i)),
			logPath:   filepath.Join(artifacts, fmt.Sprintf("daemon-%d.log", i)),
		})
	}
	return f
}

// reservePort binds an ephemeral loopback port, records it, and
// releases it for the daemon to claim. The tiny steal window between
// close and the daemon's bind is acceptable on a loopback test fabric;
// a stolen port surfaces as a daemon startup failure, not silence.
func reservePort(network string) (netip.AddrPort, error) {
	switch network {
	case "udp":
		c, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			return netip.AddrPort{}, err
		}
		addr := c.LocalAddr().(*net.UDPAddr).AddrPort()
		return addr, c.Close()
	case "tcp":
		l, err := net.ListenTCP("tcp4", &net.TCPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			return netip.AddrPort{}, err
		}
		addr := l.Addr().(*net.TCPAddr).AddrPort()
		return addr, l.Close()
	}
	return netip.AddrPort{}, fmt.Errorf("reservePort: unknown network %q", network)
}

// mixSeed derives one daemon incarnation's RNG seed from the master
// seed. Mixing the incarnation in matters: a restarted daemon with its
// dead predecessor's seed would re-allocate the predecessor's group and
// mirror-clash with its own ghost in every survivor's cache.
func mixSeed(master uint64, idx, incarnation int) uint64 {
	z := master ^ uint64(idx+1)*0x9e3779b97f4a7c15 ^ uint64(incarnation+1)*0xbf58476d1ce4e5b9
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		return 1 // zero asks sdrd to derive its own seed; we need control
	}
	return z
}

// spawn starts (or restarts) the daemon in its slot. Daemon logs append
// to one file per slot across incarnations so a restart's history reads
// as one stream.
func (f *fleet) spawn(d *daemon) error {
	logFile, err := os.OpenFile(d.logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("daemon %d: log: %w", d.idx, err)
	}
	fmt.Fprintf(logFile, "---- incarnation %d ----\n", d.incarnation)
	args := []string{
		"-origin", d.origin.String(),
		"-listen", d.listen.String(),
		"-peers", d.ingress.String(),
		"-announce", fmt.Sprintf("chaos-%d", d.idx),
		"-ttl", "15",
		"-seed", strconv.FormatUint(mixSeed(f.master, d.idx, d.incarnation), 10),
		"-announce-initial", "2s",
		"-max-sessions", "64",
		"-stale-after", "4s",
		"-cache", d.cacheFile,
		"-checkpoint", "500ms",
		"-http-debug", d.http.String(),
	}
	if d.storageFaults != "" {
		args = append(args, "-storage-faults", d.storageFaults)
	}
	cmd := exec.Command(f.sdrd, args...)
	cmd.Stdout = logFile
	cmd.Stderr = logFile
	if err := cmd.Start(); err != nil {
		_ = logFile.Close()
		return fmt.Errorf("daemon %d: start: %w", d.idx, err)
	}
	d.cmd = cmd
	d.logFile = logFile
	d.exited = make(chan error, 1)
	go func(c *exec.Cmd, lf *os.File, ch chan error) {
		ch <- c.Wait()
		_ = lf.Close()
	}(cmd, logFile, d.exited)
	return nil
}

// signal delivers sig to the daemon's current process.
func (d *daemon) signal(sig os.Signal) error {
	if d.cmd == nil || d.cmd.Process == nil {
		return fmt.Errorf("daemon %d: no process", d.idx)
	}
	return d.cmd.Process.Signal(sig)
}

// waitExit blocks until the daemon's current process exits.
func (d *daemon) waitExit(timeout time.Duration) error {
	select {
	case <-d.exited:
		return nil
	case <-time.After(timeout):
		return fmt.Errorf("daemon %d: still running after %v", d.idx, timeout)
	}
}

// stopAll SIGTERMs every live daemon — exercising the graceful drain
// path — and escalates to SIGKILL only if a daemon overstays.
func (f *fleet) stopAll() {
	for _, d := range f.ds {
		if d.cmd != nil {
			_ = d.signal(syscall.SIGTERM)
		}
	}
	for _, d := range f.ds {
		if d.cmd == nil {
			continue
		}
		if err := d.waitExit(5 * time.Second); err != nil {
			_ = d.signal(syscall.SIGKILL)
			_ = d.waitExit(2 * time.Second)
		}
	}
}

// get fetches one debug endpoint, returning body and status.
func (f *fleet) get(d *daemon, path string) (string, int, error) {
	resp, err := f.client.Get("http://" + d.http.String() + path)
	if err != nil {
		return "", 0, err
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", resp.StatusCode, err
	}
	return string(body), resp.StatusCode, nil
}

// waitReady polls /readyz until the daemon reports ready.
func (f *fleet) waitReady(d *daemon, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if _, code, err := f.get(d, "/readyz"); err == nil && code == http.StatusOK {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("daemon %d: not ready after %v", d.idx, timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// metrics scrapes and parses /metrics into name → value. Histogram
// bucket lines carry labels and are skipped; the invariants only read
// scalar families.
func (f *fleet) metrics(d *daemon) (map[string]float64, error) {
	body, code, err := f.get(d, "/metrics")
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("daemon %d: /metrics status %d", d.idx, code)
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok || strings.Contains(name, "{") {
			continue
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			continue
		}
		out[name] = v
	}
	return out, nil
}

// sessRow is one parsed /sessions line: key, group, ttl, name.
type sessRow struct {
	key   string
	group string
	name  string
}

// originOf extracts the origin half of a session key ("origin/id").
func originOf(key string) string {
	o, _, _ := strings.Cut(key, "/")
	return o
}

// sessions scrapes and parses the daemon's live session table.
func (f *fleet) sessions(d *daemon) ([]sessRow, error) {
	body, code, err := f.get(d, "/sessions")
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("daemon %d: /sessions status %d", d.idx, code)
	}
	var rows []sessRow
	for _, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		parts := strings.SplitN(line, "\t", 4)
		if len(parts) != 4 {
			return nil, fmt.Errorf("daemon %d: bad /sessions line %q", d.idx, line)
		}
		rows = append(rows, sessRow{key: parts[0], group: parts[1], name: parts[3]})
	}
	return rows, nil
}

// ownRow finds the daemon's own announcement in its session table:
// the row whose key origin matches the daemon's origin and is not a
// known ghost of a previous incarnation.
func (f *fleet) ownRow(d *daemon, ghosts map[string]bool) (sessRow, bool, error) {
	rows, err := f.sessions(d)
	if err != nil {
		return sessRow{}, false, err
	}
	for _, r := range rows {
		if originOf(r.key) == d.origin.String() && !ghosts[r.key] {
			return r, true, nil
		}
	}
	return sessRow{}, false, nil
}
