package sessiondir

import (
	"bytes"
	"fmt"
	"net/netip"
	"testing"
	"time"

	"sessiondir/internal/mcast"
	"sessiondir/internal/sap"
	"sessiondir/internal/session"
	"sessiondir/internal/transport"
)

// forge crafts raw SAP packets on a bus endpoint — the hostile peer the
// admission layer exists to contain. It deliberately bypasses the
// Directory so every header field is attacker-controlled.
type forge struct {
	t  *testing.T
	ep *transport.BusEndpoint
}

func newForge(t *testing.T, bus *transport.Bus) *forge {
	return &forge{t: t, ep: bus.Endpoint()}
}

// send marshals and transmits a SAP packet with the given header origin.
func (f *forge) send(typ sap.MessageType, sapOrigin netip.Addr, desc *session.Description) {
	f.t.Helper()
	payload, err := desc.MarshalSDP()
	if err != nil {
		f.t.Fatal(err)
	}
	pkt := sap.Packet{
		Type:      typ,
		MsgIDHash: sap.MsgIDHashOf(payload),
		Origin:    sapOrigin,
		Payload:   payload,
	}
	wire, err := pkt.Marshal(nil)
	if err != nil {
		f.t.Fatal(err)
	}
	if err := f.ep.Send(nil, wire, desc.TTL); err != nil {
		f.t.Fatal(err)
	}
}

// peerDesc builds an internally consistent session from a peer origin.
func peerDesc(origin string, id uint64, space mcast.AddrSpace, addr mcast.Addr, ttl mcast.TTL) *session.Description {
	return &session.Description{
		ID:      id,
		Version: 1,
		Origin:  netip.MustParseAddr(origin),
		Name:    fmt.Sprintf("peer-%s-%d", origin, id),
		Group:   space.Group(addr),
		TTL:     ttl,
		Media:   []session.Media{{Type: "audio", Port: 5004, Proto: "RTP/AVP", Format: "0"}},
	}
}

func knowsKey(d *Directory, key string) bool {
	for _, s := range d.Sessions() {
		if s.Key() == key {
			return true
		}
	}
	return false
}

// TestAdmissionDeleteSpoofing: a deletion must name a cached announcement
// and carry its origin; anything else is counted and dropped, so a
// hostile peer cannot blind-delete a victim's session.
func TestAdmissionDeleteSpoofing(t *testing.T) {
	bus := transport.NewBus()
	clk := newFakeClock()
	dir, _ := newDirectory(t, bus, clk, "10.0.0.1", 64, 1, nil)
	f := newForge(t, bus)
	space := mcast.SyntheticSpace(64)

	victim := peerDesc("10.0.0.2", 7, space, 5, 127)
	f.send(sap.Announce, victim.Origin, victim)
	if !knowsKey(dir, victim.Key()) {
		t.Fatal("honest announcement not cached")
	}

	// Forged: the deleter's SAP origin is not the cached announcement's.
	f.send(sap.Delete, netip.MustParseAddr("10.0.0.66"), victim)
	if !knowsKey(dir, victim.Key()) {
		t.Fatal("spoofed deletion (wrong SAP origin) evicted the victim")
	}
	if m := dir.Metrics(); m.ForgedDeletes != 1 {
		t.Fatalf("ForgedDeletes = %d, want 1", m.ForgedDeletes)
	}

	// Forged: deletion of a session we own ourselves.
	own, err := dir.CreateSession(testDesc("mine", 127))
	if err != nil {
		t.Fatal(err)
	}
	f.send(sap.Delete, own.Origin, own)
	if len(dir.OwnSessions()) != 1 {
		t.Fatal("network deletion withdrew an owned session")
	}
	if m := dir.Metrics(); m.ForgedDeletes != 2 {
		t.Fatalf("ForgedDeletes = %d, want 2", m.ForgedDeletes)
	}

	// Deletion of an unknown session: ignored, not counted as forged.
	stranger := peerDesc("10.0.0.3", 9, space, 6, 127)
	f.send(sap.Delete, stranger.Origin, stranger)
	if m := dir.Metrics(); m.ForgedDeletes != 2 {
		t.Fatalf("unknown-session delete counted as forged: %d", m.ForgedDeletes)
	}

	// The genuine deletion still works.
	f.send(sap.Delete, victim.Origin, victim)
	if knowsKey(dir, victim.Key()) {
		t.Fatal("genuine deletion ignored")
	}
}

// TestAdmissionForgedReports: announcements that are internally
// inconsistent or disagree with the cache without a version bump are
// dropped and counted, and cannot poison cached state.
func TestAdmissionForgedReports(t *testing.T) {
	bus := transport.NewBus()
	clk := newFakeClock()
	dir, _ := newDirectory(t, bus, clk, "10.0.0.1", 64, 1, nil)
	f := newForge(t, bus)
	space := mcast.SyntheticSpace(64)

	honest := peerDesc("10.0.0.2", 1, space, 10, 127)
	f.send(sap.Announce, honest.Origin, honest)

	forged := 0
	check := func(what string) {
		t.Helper()
		forged++
		if m := dir.Metrics(); m.ForgedReports != uint64(forged) {
			t.Fatalf("%s: ForgedReports = %d, want %d", what, m.ForgedReports, forged)
		}
	}

	// SAP header origin != SDP origin.
	f.send(sap.Announce, netip.MustParseAddr("10.0.0.66"), honest)
	check("origin mismatch")

	// Implausible scope: a TTL-0 announcement cannot have reached us.
	zero := peerDesc("10.0.0.3", 2, space, 11, 0)
	f.send(sap.Announce, zero.Origin, zero)
	check("ttl zero")

	// Same version, mutated address: the forged clash report.
	moved := *honest
	moved.Group = space.Group(12)
	f.send(sap.Announce, moved.Origin, &moved)
	check("same-version address mutation")
	for _, s := range dir.Sessions() {
		if s.Key() == honest.Key() && s.Group != honest.Group {
			t.Fatalf("cache poisoned: %s moved to %s", s.Key(), s.Group)
		}
	}

	// Stale replay: an older version must not reach the clash tracker.
	v2 := *honest
	v2.Version = 2
	v2.Group = space.Group(13)
	f.send(sap.Announce, v2.Origin, &v2) // honest version bump, admitted
	f.send(sap.Announce, honest.Origin, honest)
	check("stale version replay")

	// A forged echo of one of our own sessions at a different address.
	own, err := dir.CreateSession(testDesc("mine", 127))
	if err != nil {
		t.Fatal(err)
	}
	echo := *own
	idx, _ := space.Index(own.Group)
	echo.Group = space.Group((idx + 1) % 64)
	f.send(sap.Announce, echo.Origin, &echo)
	check("forged own echo")
	if m := dir.Metrics(); m.ClashAddressChanges != 0 {
		t.Fatalf("forged packets forced %d address changes", m.ClashAddressChanges)
	}
}

// TestAdmissionBudgetEvictionAndShed: the cache budget evicts stale
// entries first and sheds the newcomer when everything cached is fresh.
func TestAdmissionBudgetEvictionAndShed(t *testing.T) {
	bus := transport.NewBus()
	clk := newFakeClock()
	ep := bus.Endpoint()
	dir, err := New(Config{
		Origin:      netip.MustParseAddr("10.0.0.1"),
		Transport:   ep,
		Space:       mcast.SyntheticSpace(64),
		Clock:       clk.Now,
		Seed:        1,
		MaxSessions: 3,
		StaleAfter:  2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := newForge(t, bus)
	space := mcast.SyntheticSpace(64)

	a := peerDesc("10.0.0.2", 1, space, 1, 127)
	f.send(sap.Announce, a.Origin, a)
	clk.Advance(5 * time.Minute) // a goes stale
	b := peerDesc("10.0.0.3", 2, space, 2, 127)
	c := peerDesc("10.0.0.4", 3, space, 3, 127)
	f.send(sap.Announce, b.Origin, b)
	f.send(sap.Announce, c.Origin, c)
	if n := dir.CacheSize(); n != 3 {
		t.Fatalf("cache size %d, want 3", n)
	}

	// Budget full; a is the only stale entry, so it is evicted.
	d := peerDesc("10.0.0.5", 4, space, 4, 127)
	f.send(sap.Announce, d.Origin, d)
	if knowsKey(dir, a.Key()) {
		t.Fatal("stale entry not evicted under budget pressure")
	}
	if !knowsKey(dir, d.Key()) {
		t.Fatal("newcomer not admitted after eviction")
	}
	m := dir.Metrics()
	if m.Evictions != 1 || m.Shed != 0 {
		t.Fatalf("metrics %+v, want 1 eviction, 0 shed", m)
	}

	// Everything cached is now fresh: the next newcomer is shed.
	e := peerDesc("10.0.0.6", 5, space, 5, 127)
	f.send(sap.Announce, e.Origin, e)
	if knowsKey(dir, e.Key()) {
		t.Fatal("newcomer admitted past a budget full of fresh state")
	}
	m = dir.Metrics()
	if m.Shed != 1 {
		t.Fatalf("Shed = %d, want 1", m.Shed)
	}
	if n := dir.CacheSize(); n > 3 {
		t.Fatalf("cache size %d exceeds budget 3", n)
	}

	// A re-announcement of an already-cached session is never shed.
	f.send(sap.Announce, d.Origin, d)
	if got := dir.Metrics().Shed; got != 1 {
		t.Fatalf("re-announcement shed: Shed = %d", got)
	}
}

// TestAdmissionPerOriginQuota: one origin cannot claim more than its
// share of cache slots, however many distinct sessions it invents.
func TestAdmissionPerOriginQuota(t *testing.T) {
	bus := transport.NewBus()
	clk := newFakeClock()
	dir, err := New(Config{
		Origin:       netip.MustParseAddr("10.0.0.1"),
		Transport:    bus.Endpoint(),
		Space:        mcast.SyntheticSpace(64),
		Clock:        clk.Now,
		Seed:         1,
		MaxPerOrigin: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := newForge(t, bus)
	space := mcast.SyntheticSpace(64)

	for i := 0; i < 5; i++ {
		d := peerDesc("10.0.0.9", uint64(i+1), space, mcast.Addr(i), 127)
		f.send(sap.Announce, d.Origin, d)
	}
	if n := dir.CacheSize(); n != 2 {
		t.Fatalf("hostile origin cached %d sessions, quota 2", n)
	}
	if m := dir.Metrics(); m.QuotaDrops != 3 {
		t.Fatalf("QuotaDrops = %d, want 3", m.QuotaDrops)
	}
	// A different origin is unaffected.
	other := peerDesc("10.0.0.10", 1, space, 9, 127)
	f.send(sap.Announce, other.Origin, other)
	if !knowsKey(dir, other.Key()) {
		t.Fatal("innocent origin denied by another origin's quota")
	}
}

// TestAdmissionOriginRateLimit: the token bucket bounds how much
// processing one origin can demand, without touching other origins.
func TestAdmissionOriginRateLimit(t *testing.T) {
	bus := transport.NewBus()
	clk := newFakeClock()
	dir, err := New(Config{
		Origin:      netip.MustParseAddr("10.0.0.1"),
		Transport:   bus.Endpoint(),
		Space:       mcast.SyntheticSpace(256),
		Clock:       clk.Now,
		Seed:        1,
		OriginRate:  1,
		OriginBurst: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := newForge(t, bus)
	space := mcast.SyntheticSpace(256)

	for i := 0; i < 40; i++ {
		d := peerDesc("10.0.0.9", uint64(i+1), space, mcast.Addr(i), 127)
		f.send(sap.Announce, d.Origin, d)
	}
	m := dir.Metrics()
	if m.QuotaDrops < 32 {
		t.Fatalf("QuotaDrops = %d, want >= 32 of 40 flood packets dropped", m.QuotaDrops)
	}
	if dir.CacheSize() > 8 {
		t.Fatalf("flood cached %d sessions past an 8-token burst", dir.CacheSize())
	}
	// Another origin's first packet sails through.
	other := peerDesc("10.0.0.10", 1, space, 200, 127)
	f.send(sap.Announce, other.Origin, other)
	if !knowsKey(dir, other.Key()) {
		t.Fatal("innocent origin rate-limited by the flooder's bucket")
	}
	// The bucket refills with time.
	clk.Advance(time.Minute)
	late := peerDesc("10.0.0.9", 100, space, 201, 127)
	f.send(sap.Announce, late.Origin, late)
	if !knowsKey(dir, late.Key()) {
		t.Fatal("refilled bucket still denying the origin")
	}
}

// TestAdmissionLoadCacheOverBudget: loading a checkpoint larger than
// MaxSessions must trim deterministically, never over-admit.
func TestAdmissionLoadCacheOverBudget(t *testing.T) {
	// Build a 10-session checkpoint via an unbounded directory.
	bus := transport.NewBus()
	clk := newFakeClock()
	donor, _ := newDirectory(t, bus, clk, "10.0.0.1", 64, 1, nil)
	f := newForge(t, bus)
	space := mcast.SyntheticSpace(64)
	for i := 0; i < 10; i++ {
		d := peerDesc(fmt.Sprintf("10.0.1.%d", i+1), uint64(i+1), space, mcast.Addr(i), 127)
		f.send(sap.Announce, d.Origin, d)
		clk.Advance(time.Second) // distinct LastHeard per entry
	}
	var checkpoint bytes.Buffer
	if err := donor.SaveCache(&checkpoint); err != nil {
		t.Fatal(err)
	}

	load := func() *Directory {
		t.Helper()
		dir, err := New(Config{
			Origin:      netip.MustParseAddr("10.0.0.99"),
			Transport:   transport.NewBus().Endpoint(),
			Space:       mcast.SyntheticSpace(64),
			Clock:       clk.Now,
			Seed:        1,
			MaxSessions: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dir.LoadCache(bytes.NewReader(checkpoint.Bytes())); err != nil {
			t.Fatal(err)
		}
		return dir
	}

	d1 := load()
	if n := d1.CacheSize(); n != 4 {
		t.Fatalf("over-budget load kept %d sessions, budget 4", n)
	}
	if m := d1.Metrics(); m.Evictions != 6 {
		t.Fatalf("Evictions = %d, want 6", m.Evictions)
	}
	// The oldest entries go first: the four newest survive.
	for i := 6; i < 10; i++ {
		key := fmt.Sprintf("10.0.1.%d/%d", i+1, i+1)
		if !knowsKey(d1, key) {
			t.Fatalf("expected survivor %s evicted", key)
		}
	}
	// And the trim is deterministic: a second load keeps the same set.
	d2 := load()
	fp := func(d *Directory) []string {
		var keys []string
		for _, s := range d.Sessions() {
			keys = append(keys, s.Key())
		}
		return sortedStrings(keys)
	}
	a, b := fp(d1), fp(d2)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("trim nondeterministic:\n%v\n%v", a, b)
	}
}

func sortedStrings(s []string) []string {
	out := append([]string(nil), s...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
