GO ?= go

.PHONY: all build test race vet lint lint-json chaos adversary proc-chaos proc-chaos-extended storage-chaos storage-chaos-extended bench bench-snapshot bench-snapshot-full

all: build vet lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency regression gate: exercises the parallel experiment
# engine, the sharded scope cache, and the determinism tests under the
# race detector.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# The determinism, concurrency & ownership gate: runs every analyzer
# registered in internal/analysis (detrand, maporder, lockscope,
# looplock, errdrop, metricname, buflease, atomicfield) over the module
# — new analyzers are picked up automatically. Nonzero exit on any
# finding; see DESIGN.md §9 and §14 for the rules and the waiver syntax.
# LINTFLAGS passes extra mclint flags through (CI uses
# LINTFLAGS=-format=github for inline PR annotations).
lint:
	$(GO) run ./cmd/mclint $(LINTFLAGS)

# Machine-readable diagnostics for tooling (JSON array on stdout).
lint-json:
	$(GO) run ./cmd/mclint -json

# The fault-injection convergence gate: directory fleets under loss,
# duplication, corruption, reordering, and partition/heal cycles must
# converge, stay clash-free, and replay deterministically from their
# seeds (DESIGN.md §10). Runs under the race detector; wall time is tiny
# because the harness uses virtual time.
chaos:
	$(GO) test -race -count=1 -run TestChaos ./internal/chaos

# The adversarial resilience gate: hostile agents (flooder, poisoner,
# clash-forger, replayer, delete-forger) against a budget-bounded fleet.
# Honest sessions must survive, no cache may exceed its budget, the fleet
# must re-converge once the attack stops, and hostile runs must replay
# field-identically from their seeds (DESIGN.md §11).
adversary:
	$(GO) test -race -count=1 -run TestAdversary ./internal/chaos

# The process-level chaos gate: real sdrd daemons wired through the
# deterministic UDP fault relay, driven by the mcchaos orchestrator —
# flash crowds, SIGKILL+restart from checkpoint, partition/heal — with
# race-built binaries and seed-replayable verdicts (DESIGN.md §15).
# Quick tier, bounded around a minute of wall time.
proc-chaos:
	$(GO) test -count=1 -run TestProcChaosQuick ./cmd/mcchaos

# Nightly tier: the extended schedule (bigger crowd, SIGSTOP freeze,
# longer partition, rougher links), same seed-replay contract.
# PROC_CHAOS_ARTIFACTS, when set, collects daemon logs and verdicts.
proc-chaos-extended:
	PROC_CHAOS_EXTENDED=1 $(GO) test -count=1 -timeout 20m -run TestProcChaos ./cmd/mcchaos

# The storage-fault gate: the crash-point torture harness enumerates a
# simulated crash after every VFS operation of a save/append/compact
# script (under each crash mode), plus the seeded fault soak and the
# FaultFS replay-identity check — recovery must always land on a valid
# pre- or post-op state and acked appends must never be lost
# (DESIGN.md §16). Quick tier, seconds of wall time.
storage-chaos:
	$(GO) test -race -count=1 -run 'TestCrashPoint|TestFaultSoak|TestFaultFSDeterministicReplay|TestMemFSCrashDurability' ./internal/storage

# Nightly tier: the extended crash-point sweep (longer op script, more
# seeds, all crash modes) and the kill -9 journal e2e.
storage-chaos-extended:
	STORAGE_CHAOS_EXTENDED=1 $(GO) test -race -count=1 -timeout 20m -run 'TestCrashPoint|TestFaultSoak' ./internal/storage
	$(GO) test -count=1 -timeout 10m -run TestSdrdKillMidJournal .

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...

# Refresh BENCH.json: wall time per figure at quick scale plus the
# allocation hot-path micro-benchmarks. Commit the result to record the
# perf trajectory (see DESIGN.md "Performance").
bench-snapshot: build
	$(GO) run ./cmd/mcbench -experiment fig5,fig12 -json BENCH.json

# Refresh BENCH.json including the full tier: quick figures first, then
# the directory-scale occupancy sweep (25k/100k sessions) merged onto
# the same file. Two invocations because -full also scales fig5/fig12
# to hour-long runs; the merge keeps one committed baseline carrying
# both tiers. Takes a few minutes (the 100k runs dominate).
bench-snapshot-full: bench-snapshot
	$(GO) run ./cmd/mcbench -experiment occupancy -full -json BENCH.json -merge
