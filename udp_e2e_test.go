package sessiondir_test

// End-to-end tests of the public API over real UDP sockets (unicast
// fan-out on loopback, so no multicast routing is needed) — the same path
// cmd/sdrd uses in -peers mode.

import (
	"context"
	"net/netip"
	"sync/atomic"
	"testing"
	"time"

	"sessiondir"
	"sessiondir/internal/mcast"
	"sessiondir/internal/session"
	"sessiondir/internal/transport"
)

// udpMesh builds two UDP endpoints that address each other, using the
// two-phase trick: bind both first, then wire peers via re-dial.
func udpMesh(t *testing.T) (ta, tb transport.Transport) {
	t.Helper()
	// Reserve both sockets first with placeholder peers, then rebuild each
	// pointing at the other's *final* address. The second generation reuses
	// the first generation's port by closing it and binding explicitly.
	gen1a, err := transport.NewUDP(transport.UDPConfig{
		Peers: []netip.AddrPort{netip.MustParseAddrPort("127.0.0.1:1")},
	})
	if err != nil {
		t.Fatal(err)
	}
	gen1b, err := transport.NewUDP(transport.UDPConfig{
		Peers: []netip.AddrPort{netip.MustParseAddrPort("127.0.0.1:1")},
	})
	if err != nil {
		gen1a.Close()
		t.Fatal(err)
	}
	addrA, addrB := gen1a.LocalAddr(), gen1b.LocalAddr()
	gen1a.Close()
	gen1b.Close()
	a, err := transport.NewUDP(transport.UDPConfig{
		Peers:      []netip.AddrPort{addrB},
		ListenAddr: addrA.String(),
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := transport.NewUDP(transport.UDPConfig{
		Peers:      []netip.AddrPort{addrA},
		ListenAddr: addrB.String(),
	})
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		a.Close()
		b.Close()
	})
	return a, b
}

func TestDirectoryOverRealUDP(t *testing.T) {
	ta, tb := udpMesh(t)

	var learned atomic.Int64
	a, err := sessiondir.New(sessiondir.Config{
		Origin:    netip.MustParseAddr("127.0.0.1"),
		Transport: ta,
		Space:     mcast.SyntheticSpace(64),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := sessiondir.New(sessiondir.Config{
		Origin:    netip.MustParseAddr("127.0.0.2"),
		Transport: tb,
		Space:     mcast.SyntheticSpace(64),
		OnEvent: func(e sessiondir.Event) {
			if e.Kind == sessiondir.EventSessionLearned {
				learned.Add(1)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	desc, err := a.CreateSession(&session.Description{
		Name:  "udp e2e",
		TTL:   63,
		Media: []session.Media{{Type: "audio", Port: 5004, Proto: "RTP/AVP", Format: "0"}},
	})
	if err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(scaled(3 * time.Second))
	for learned.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if learned.Load() == 0 {
		t.Fatal("B never learned the session over UDP")
	}
	found := false
	for _, s := range b.Sessions() {
		if s.Key() == desc.Key() && s.Group == desc.Group {
			found = true
		}
	}
	if !found {
		t.Fatalf("B's listing lacks the session: %v", b.Sessions())
	}

	m := a.Metrics()
	if m.AnnouncementsSent == 0 {
		t.Fatalf("A metrics: %+v", m)
	}
	mb := b.Metrics()
	if mb.PacketsReceived == 0 || mb.SessionsLearned == 0 {
		t.Fatalf("B metrics: %+v", mb)
	}
}

func TestDirectoryRunLoop(t *testing.T) {
	ta, tb := udpMesh(t)
	a, err := sessiondir.New(sessiondir.Config{
		Origin:    netip.MustParseAddr("127.0.0.1"),
		Transport: ta,
		Space:     mcast.SyntheticSpace(64),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	_ = tb

	ctx, cancel := context.WithTimeout(context.Background(), scaled(300*time.Millisecond))
	defer cancel()
	err = a.Run(ctx)
	if err != context.DeadlineExceeded {
		t.Fatalf("Run returned %v", err)
	}
}

func TestDirectoryMetricsMalformed(t *testing.T) {
	ta, tb := udpMesh(t)
	b, err := sessiondir.New(sessiondir.Config{
		Origin:    netip.MustParseAddr("127.0.0.2"),
		Transport: tb,
		Space:     mcast.SyntheticSpace(64),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// Fire garbage at B: a runt (under the 4-byte SAP header minimum) is
	// quarantined by the transport read loop and never reaches the
	// directory; a full-size undecodable packet is counted one layer up.
	ctx := context.Background()
	if err := ta.Send(ctx, []byte{0xff, 0x00, 0x01}, 1); err != nil {
		t.Fatal(err)
	}
	if err := ta.Send(ctx, []byte{0xff, 0x00, 0x01, 0x02, 0x03}, 1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(scaled(2 * time.Second))
	for b.Metrics().PacketsMalformed == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := b.Metrics().PacketsMalformed; got != 1 {
		t.Fatalf("malformed counter = %d", got)
	}
	if got := tb.(*transport.UDPTransport).Metrics().Runts; got != 1 {
		t.Fatalf("transport runt counter = %d", got)
	}
}
