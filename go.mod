module sessiondir

go 1.23
