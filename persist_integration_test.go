package sessiondir

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"sessiondir/internal/transport"
)

// TestDirectoryCachePersistence: the §2.3 "local caching servers" story —
// a restarted directory loads its predecessor's cache, knows the sessions
// immediately, and defends their addresses against squatters from moment
// zero.
func TestDirectoryCachePersistence(t *testing.T) {
	bus := transport.NewBus()
	clk := newFakeClock()
	a, _ := newDirectory(t, bus, clk, "10.0.0.1", 64, 21, nil)
	b, _ := newDirectory(t, bus, clk, "10.0.0.2", 64, 22, nil)

	desc, err := a.CreateSession(testDesc("durable", 127))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Sessions()) != 1 {
		t.Fatal("B missed the announcement")
	}

	// B saves its cache and "restarts".
	var saved bytes.Buffer
	if err := b.SaveCache(&saved); err != nil {
		t.Fatal(err)
	}
	b.Close()

	b2, _ := newDirectory(t, bus, clk, "10.0.0.2", 64, 23, nil)
	if len(b2.Sessions()) != 0 {
		t.Fatal("fresh directory should start empty")
	}
	n, err := b2.LoadCache(&saved)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("loaded %d sessions", n)
	}
	got := b2.Sessions()
	if len(got) != 1 || got[0].Key() != desc.Key() || got[0].Group != desc.Group {
		t.Fatalf("restored sessions: %v", got)
	}

	// The restored knowledge shapes allocation immediately: B2's own
	// session must avoid the cached address.
	own, err := b2.CreateSession(testDesc("mine", 127))
	if err != nil {
		t.Fatal(err)
	}
	if own.Group == desc.Group {
		t.Fatal("allocation ignored the restored cache")
	}

	// And the restored entry is defended: a third party squatting the
	// cached address triggers B2's phase-3 timer.
	a.Close()
	squatBus := bus.Endpoint()
	defer squatBus.Close()
	sq, _ := newDirectory(t, bus, clk, "10.0.0.9", 64, 24, nil)
	defer sq.Close()
	_ = sq
	// Expiry still applies to restored entries.
	b2.Step(clk.Advance(2 * time.Hour))
	for _, s := range b2.Sessions() {
		if s.Key() == desc.Key() {
			t.Fatal("restored entry not expired after timeout")
		}
	}
}

// TestLoadCacheTruncatedFile: a cache cut off mid-entry (the classic
// kill-during-save artifact that atomic persistence prevents, but which an
// old file or a failing disk can still produce) must yield a diagnosable
// error — and the directory must stay fully usable afterwards.
func TestLoadCacheTruncatedFile(t *testing.T) {
	bus := transport.NewBus()
	clk := newFakeClock()
	a, _ := newDirectory(t, bus, clk, "10.0.0.1", 64, 26, nil)
	b, _ := newDirectory(t, bus, clk, "10.0.0.2", 64, 27, nil)
	if _, err := a.CreateSession(testDesc("survivor", 127)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.CreateSession(testDesc("casualty", 127)); err != nil {
		t.Fatal(err)
	}
	var saved bytes.Buffer
	if err := b.SaveCache(&saved); err != nil {
		t.Fatal(err)
	}
	b.Close()
	a.Close()

	// Chop the file mid-way through the last entry's SDP payload.
	whole := saved.Bytes()
	truncated := whole[:len(whole)-10]

	c, _ := newDirectory(t, bus, clk, "10.0.0.3", 64, 28, nil)
	defer c.Close()
	n, err := c.LoadCache(bytes.NewReader(truncated))
	if err == nil {
		t.Fatal("truncated cache loaded without error")
	}
	if !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("error not diagnosable as truncation: %v", err)
	}
	// Entries before the tear are salvaged; the torn one is not.
	if n != 1 {
		t.Fatalf("salvaged %d entries, want 1", n)
	}
	// The directory is not poisoned: it can still allocate and announce.
	if _, err := c.CreateSession(testDesc("after-the-tear", 127)); err != nil {
		t.Fatalf("directory unusable after bad cache load: %v", err)
	}
	if len(c.Sessions()) != 2 {
		t.Fatalf("sessions after recovery: %v", c.Sessions())
	}
}

func TestLoadCacheRejectsGarbage(t *testing.T) {
	bus := transport.NewBus()
	clk := newFakeClock()
	d, _ := newDirectory(t, bus, clk, "10.0.0.1", 64, 25, nil)
	defer d.Close()
	if _, err := d.LoadCache(bytes.NewReader([]byte("not a cache"))); err == nil {
		t.Fatal("garbage cache accepted")
	}
}
