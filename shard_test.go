package sessiondir

import (
	"context"
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"testing"
	"time"

	"sessiondir/internal/allocator"
	"sessiondir/internal/clash"
	"sessiondir/internal/mcast"
	"sessiondir/internal/sap"
	"sessiondir/internal/session"
	"sessiondir/internal/transport"
)

// newShardedDirectory builds a directory like newDirectory but with the
// cache striped over the given shard count and an admission budget tight
// enough that scripted floods exercise eviction.
func newShardedDirectory(t *testing.T, bus *transport.Bus, clk *fakeClock, origin string, shards int, log *eventLog) *Directory {
	t.Helper()
	const spaceSize = 128
	cfg := Config{
		Origin:       netip.MustParseAddr(origin),
		Transport:    bus.Endpoint(),
		Space:        mcast.SyntheticSpace(spaceSize),
		Allocator:    allocator.NewAdaptive(spaceSize, allocator.AdaptiveConfig{GapFraction: 0.2}),
		Clock:        clk.Now,
		Seed:         42,
		Shards:       shards,
		MaxSessions:  24,
		MaxPerOrigin: 10,
		StaleAfter:   2 * time.Minute,
		RecentWindow: 30 * time.Second,
		Delay:        clash.NewUniformDelay(1000, 1001),
	}
	if log != nil {
		cfg.OnEvent = log.add
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// runShardScenario scripts a deterministic multi-agent run — three
// unsharded peers flooding announcements at a sharded observed directory
// under a virtual clock, with deletions, malformed injections, admission
// pressure and an aging phase — and returns a replay fingerprint: the
// observed directory's full event sequence, cached/owned session state
// and metrics snapshot.
func runShardScenario(t *testing.T, shards int) string {
	t.Helper()
	bus := transport.NewBus()
	clk := newFakeClock()
	log := &eventLog{}
	obsDir := newShardedDirectory(t, bus, clk, "10.0.0.1", shards, log)
	defer obsDir.Close()

	var peers []*Directory
	for i := 0; i < 3; i++ {
		p, _ := newDirectory(t, bus, clk, fmt.Sprintf("10.0.0.%d", i+2), 128, uint64(i+2), nil)
		defer p.Close()
		peers = append(peers, p)
	}
	raw := bus.Endpoint()

	for round := 0; round < 12; round++ {
		for i, p := range peers {
			if _, err := p.CreateSession(testDesc(fmt.Sprintf("p%d-r%d", i, round), 127)); err != nil {
				t.Fatalf("peer %d round %d: %v", i, round, err)
			}
		}
		// A transient origin per round: announces once and goes silent, so
		// its session turns stale and becomes eviction fodder for the
		// admission planner in later rounds.
		tp, _ := newDirectory(t, bus, clk, fmt.Sprintf("10.0.9.%d", round+2), 128, uint64(200+round), nil)
		if _, err := tp.CreateSession(testDesc(fmt.Sprintf("t-r%d", round), 127)); err != nil {
			t.Fatal(err)
		}
		if round%3 == 0 {
			// Undecodable junk: lands in the sharded malformed counter.
			if err := raw.Send(context.Background(), []byte{0xff, 0x00, 0x01}, 127); err != nil {
				t.Fatal(err)
			}
		}
		if round == 5 {
			if _, err := obsDir.CreateSession(testDesc("own-a", 127)); err != nil {
				t.Fatal(err)
			}
		}
		if round == 8 {
			for _, own := range obsDir.OwnSessions() {
				if err := obsDir.WithdrawSession(own.Key()); err != nil {
					t.Fatal(err)
				}
			}
		}
		now := clk.Advance(15 * time.Second)
		obsDir.Step(now)
		for _, p := range peers {
			p.Step(now)
		}
		tp.Close()
	}
	// Silence every announcer, then age the cache through the expiry path.
	for _, p := range peers {
		p.Close()
	}
	for i := 0; i < 4; i++ {
		obsDir.Step(clk.Advance(30 * time.Minute))
	}

	var b strings.Builder
	log.mu.Lock()
	for _, e := range log.events {
		fmt.Fprintf(&b, "event %s %s\n", e.Kind, e.Key)
	}
	log.mu.Unlock()
	var keys []string
	for _, s := range obsDir.Sessions() {
		keys = append(keys, fmt.Sprintf("%s@%s", s.Key(), s.Group))
	}
	sort.Strings(keys)
	fmt.Fprintf(&b, "sessions %v\n", keys)
	for _, own := range obsDir.OwnSessions() {
		fmt.Fprintf(&b, "own %s@%s\n", own.Key(), own.Group)
	}
	for _, mv := range obsDir.Registry().Snapshot() {
		fmt.Fprintf(&b, "metric %s %s %v\n", mv.Name, mv.Kind, mv.Value)
	}
	return b.String()
}

// The PR's acceptance criterion: sharded Directory replay is
// bit-identical to the unsharded oracle for pinned seeds at shard counts
// 1, 4 and 8 — same events in the same order, same cache, same metrics.
func TestShardReplayBitIdentical(t *testing.T) {
	oracle := runShardScenario(t, 1) // Shards<=1 is the unsharded layout
	if !strings.Contains(oracle, "event session-evicted") ||
		!strings.Contains(oracle, "event session-expired") {
		t.Fatalf("scenario lost its teeth: no eviction/expiry pressure in oracle run:\n%s", oracle)
	}
	for _, shards := range []int{4, 8} {
		got := runShardScenario(t, shards)
		if got != oracle {
			t.Fatalf("shards=%d replay diverges from unsharded oracle:\n--- sharded\n%s\n--- oracle\n%s", shards, got, oracle)
		}
	}
}

// Eviction ordering under sustained admission pressure must match the
// unsharded oracle exactly: the planners impose a total order on
// candidates, so shard-grouped candidate delivery may not reorder who
// gets displaced.
func TestShardEvictionOrderMatchesOracle(t *testing.T) {
	evictions := func(shards int) []string {
		bus := transport.NewBus()
		clk := newFakeClock()
		log := &eventLog{}
		d := newShardedDirectory(t, bus, clk, "10.0.0.1", shards, log)
		defer d.Close()
		// Flood from many distinct origins so candidates span shards.
		for i := 0; i < 60; i++ {
			p, _ := newDirectory(t, bus, clk, fmt.Sprintf("10.0.%d.%d", i/8+1, i%8+2), 128, uint64(100+i), nil)
			if _, err := p.CreateSession(testDesc(fmt.Sprintf("f%d", i), 127)); err != nil {
				t.Fatal(err)
			}
			now := clk.Advance(3 * time.Second)
			d.Step(now)
			p.Step(now)
			p.Close()
		}
		var out []string
		log.mu.Lock()
		for _, e := range log.events {
			if e.Kind == EventSessionEvicted {
				out = append(out, e.Key)
			}
		}
		log.mu.Unlock()
		return out
	}
	oracle := evictions(1)
	if len(oracle) == 0 {
		t.Fatal("flood produced no evictions; the scenario is not exercising admission")
	}
	for _, shards := range []int{4, 8} {
		if got := evictions(shards); fmt.Sprint(got) != fmt.Sprint(oracle) {
			t.Fatalf("shards=%d eviction order diverges:\n got    %v\n oracle %v", shards, got, oracle)
		}
	}
}

// Cross-shard CreateSessionBatch partial failure: when the space runs
// out mid-batch — against a view assembled from entries spread across
// shards — the sessions created before the failure stay created, the
// error surfaces, and the outcome is identical to the unsharded oracle.
func TestCreateSessionBatchPartialFailureAcrossShards(t *testing.T) {
	run := func(shards int) (created []string, errStr string, cacheLen int) {
		bus := transport.NewBus()
		clk := newFakeClock()
		const spaceSize = 16
		d, err := New(Config{
			Origin:       netip.MustParseAddr("10.0.0.1"),
			Transport:    bus.Endpoint(),
			Space:        mcast.SyntheticSpace(spaceSize),
			Allocator:    allocator.NewInformedRandom(spaceSize),
			Clock:        clk.Now,
			Seed:         7,
			Shards:       shards,
			RecentWindow: 30 * time.Second,
			Delay:        clash.NewUniformDelay(1000, 1001),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		// Seed the cache with announcements from several origins so the
		// batch's allocator view crosses shards.
		for i := 0; i < 6; i++ {
			p, _ := newDirectory(t, bus, clk, fmt.Sprintf("10.0.%d.2", i+1), spaceSize, uint64(50+i), nil)
			if _, cerr := p.CreateSession(testDesc(fmt.Sprintf("peer%d", i), 127)); cerr != nil {
				t.Fatal(cerr)
			}
			now := clk.Advance(time.Second)
			d.Step(now)
			p.Step(now)
			p.Close()
		}
		descs := make([]*session.Description, 16)
		for i := range descs {
			descs[i] = testDesc(fmt.Sprintf("b%d", i), 127)
		}
		out, berr := d.CreateSessionBatch(descs)
		for _, c := range out {
			created = append(created, fmt.Sprintf("%s@%s", c.Key(), c.Group))
		}
		if berr == nil {
			t.Fatalf("shards=%d: a 16-session batch into a %d-address space with peers resident should partially fail", shards, spaceSize)
		}
		if len(out) == 0 {
			t.Fatalf("shards=%d: partial failure created nothing", shards)
		}
		if len(out) != len(d.OwnSessions()) {
			t.Fatalf("shards=%d: %d returned but %d owned", shards, len(out), len(d.OwnSessions()))
		}
		return created, berr.Error(), d.CacheSize()
	}
	wantCreated, wantErr, wantLen := run(1)
	for _, shards := range []int{4, 8} {
		gotCreated, gotErr, gotLen := run(shards)
		if fmt.Sprint(gotCreated) != fmt.Sprint(wantCreated) || gotErr != wantErr || gotLen != wantLen {
			t.Fatalf("shards=%d partial batch diverges:\n got  %v %q len=%d\n want %v %q len=%d",
				shards, gotCreated, gotErr, gotLen, wantCreated, wantErr, wantLen)
		}
	}
}

// shardAnnouncePacket marshals a valid SAP announcement from the given
// origin for the batch-ingest tests.
func shardAnnouncePacket(t *testing.T, origin string, id uint64) []byte {
	t.Helper()
	desc := &session.Description{
		ID:      id,
		Version: 1,
		Origin:  netip.MustParseAddr(origin),
		Name:    fmt.Sprintf("batch-%s-%d", origin, id),
		Group:   netip.AddrFrom4([4]byte{224, 2, 128, byte(id)}),
		TTL:     127,
		Media:   []session.Media{{Type: "audio", Port: 20000, Proto: "RTP/AVP", Format: "0"}},
	}
	payload, err := desc.MarshalSDP()
	if err != nil {
		t.Fatal(err)
	}
	pkt := sap.Packet{
		Type:      sap.Announce,
		MsgIDHash: sap.MsgIDHashOf(payload),
		Origin:    desc.Origin,
		Payload:   payload,
	}
	wire, err := pkt.Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

// HandleBatch (the epoch-batched ingest: parallel parse, serial apply in
// arrival order) must land exactly the state that per-message delivery
// does — including the malformed counter and learned-event order.
func TestHandleBatchMatchesSequentialDelivery(t *testing.T) {
	mkDir := func(log *eventLog) *Directory {
		clk := newFakeClock()
		return newShardedDirectory(t, transport.NewBus(), clk, "10.0.0.1", 4, log)
	}
	var wires [][]byte
	for i := 0; i < 24; i++ {
		wires = append(wires, shardAnnouncePacket(t, fmt.Sprintf("10.0.%d.%d", i%5+1, i%3+2), uint64(i+1)))
		if i%7 == 0 {
			wires = append(wires, []byte{0xff, 0xee}) // malformed
		}
	}

	logBatch, logSeq := &eventLog{}, &eventLog{}
	batchDir, seqDir := mkDir(logBatch), mkDir(logSeq)
	defer batchDir.Close()
	defer seqDir.Close()

	ms := make([]transport.Message, len(wires))
	for i, w := range wires {
		ms[i] = transport.Message{Data: w}
	}
	batchDir.HandleBatch(ms) // len >= the parallel-parse threshold
	for _, w := range wires {
		seqDir.HandleBatch([]transport.Message{{Data: w}}) // serial path
	}

	state := func(d *Directory, log *eventLog) string {
		var b strings.Builder
		log.mu.Lock()
		for _, e := range log.events {
			fmt.Fprintf(&b, "event %s %s\n", e.Kind, e.Key)
		}
		log.mu.Unlock()
		var keys []string
		for _, s := range d.Sessions() {
			keys = append(keys, s.Key())
		}
		sort.Strings(keys)
		fmt.Fprintf(&b, "sessions %v\n", keys)
		fmt.Fprintf(&b, "malformed %v\n", d.Metrics().PacketsMalformed)
		return b.String()
	}
	if got, want := state(batchDir, logBatch), state(seqDir, logSeq); got != want {
		t.Fatalf("batched ingest diverges from sequential delivery:\n--- batch\n%s\n--- sequential\n%s", got, want)
	}
}
