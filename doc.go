// Package sessiondir is a multicast session directory with fully
// distributed multicast address allocation, implementing the architecture
// analysed in Mark Handley's "Session Directories and Scalable Internet
// Multicast Address Allocation" (SIGCOMM 1998).
//
// A Directory instance announces the sessions its user creates over a SAP
// announcement channel, listens to everyone else's announcements to build
// a view of the addresses in use, allocates addresses for new sessions
// from that view using (by default) Deterministic Adaptive IPRMA, and runs
// the paper's three-phase clash detection and correction protocol:
// long-standing sessions defend their address, recently announced sessions
// move, and third parties defend sessions whose originators have gone
// quiet, with exponentially distributed response delays to avoid
// implosion.
//
// The heavy machinery lives in the internal packages:
//
//   - internal/allocator — R, IR, IPR k-band, adaptive and hybrid IPRMA
//   - internal/announce  — announce/listen cache, back-off schedules
//   - internal/sap       — SAP wire codec
//   - internal/session   — session descriptions and SDP
//   - internal/clash     — response-delay distributions and the
//     three-phase protocol state machine
//   - internal/topology  — Mbone and Doar topology models
//   - internal/sim       — the paper's simulations
//   - internal/analytic  — the paper's closed-form models
//
// See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
// reproduction of every figure and table in the paper's evaluation.
package sessiondir
