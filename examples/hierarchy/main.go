// Hierarchy: the paper's §4.1 closing proposal, demonstrated. Address
// allocation is split into a slow prefix layer — regions claim contiguous
// blocks, listen for collisions, and defend them over long timescales —
// and a fast regional layer that allocates individual addresses inside the
// blocks from frequent, local usage announcements. The demo drives the
// claim protocol through a deliberate collision, then compares clash rates
// against flat global allocation.
package main

import (
	"fmt"
	"log"

	"sessiondir/internal/prefix"
	"sessiondir/internal/stats"
)

func main() {
	fmt.Println("== prefix layer: claim, listen, collide, resolve ==")
	pool, err := prefix.NewPool(prefix.PoolConfig{
		SpaceSize:   1024,
		BlockSize:   128,
		ListenTicks: 5,
		Regions:     2,
	})
	if err != nil {
		log.Fatal(err)
	}
	rng := stats.NewRNG(42)

	// Region 0 claims a block normally.
	c0 := pool.ClaimBlock(0, 0, 0, rng)
	fmt.Printf("region 0 claims %s (state %s)\n", c0.Block, c0.State)

	// Region 1 claims blind (a partition: it saw nothing), so it may take
	// the same block. Force the worst case for the demo.
	var c1 *prefix.Claim
	for {
		c1 = pool.ClaimBlock(1, 2, 1.0, rng)
		if c1.Block == c0.Block {
			break
		}
		pool.Release(c1)
	}
	fmt.Printf("region 1 blindly claims %s — collision pending\n", c1.Block)

	collisions := pool.Tick(10) // past both listen periods
	fmt.Printf("after the listen period: %d collision resolved\n", collisions)
	fmt.Printf("region 0 claim: %s, region 1 claim: %s\n", c0.State, c1.State)

	// Region 1 re-claims with visibility restored.
	c1b := pool.ClaimBlock(1, 11, 0, rng)
	pool.Tick(20)
	fmt.Printf("region 1 re-claims %s (state %s)\n", c1b.Block, c1b.State)
	if err := pool.Invariant(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("invariant holds: no two active claims overlap")

	fmt.Println("\n== flat vs hierarchical under churn ==")
	res, err := prefix.RunExperiment(prefix.ExperimentConfig{
		SpaceSize:         2048,
		BlockSize:         64,
		Regions:           8,
		SessionsPerRegion: 120,
		Churns:            200,
		InvisibleFlat:     0.02,
		InvisibleLocal:    0.0005,
		InvisiblePrefix:   0.001,
		ListenTicks:       3,
		Seed:              7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)
	fmt.Println(`
why it wins (paper §4.1): prefix allocation runs on long timescales, so
its collision window is negligible; usage announcements never leave the
region, so they can be frequent — the invisible fraction i that limits
Equation-1 packing drops by orders of magnitude.`)
}
