// Sapdump: encodes a SAP announcement, prints its wire form, decodes it
// back, and — given -listen — dumps live SAP packets from the network.
// A minimal protocol-debugging companion, in the spirit of tcpdump.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/netip"
	"os"
	"os/signal"
	"time"

	"sessiondir/internal/sap"
	"sessiondir/internal/session"
	"sessiondir/internal/transport"
)

func main() {
	var (
		listen = flag.Bool("listen", false, "join the SAP group and dump received packets")
		group  = flag.String("group", transport.DefaultSAPGroup.String(), "SAP group to join")
		port   = flag.Uint("port", transport.DefaultSAPPort, "SAP port")
	)
	flag.Parse()

	if *listen {
		dumpLive(*group, uint16(*port))
		return
	}

	desc := &session.Description{
		ID:         4711,
		Version:    1,
		Origin:     netip.MustParseAddr("10.0.0.1"),
		OriginUser: "mjh",
		Name:       "SAP codec demo",
		Group:      netip.MustParseAddr("224.2.128.99"),
		TTL:        63,
		Start:      time.Now().Truncate(time.Second),
		Stop:       time.Now().Add(time.Hour).Truncate(time.Second),
		Media:      []session.Media{{Type: "audio", Port: 20000, Proto: "RTP/AVP", Format: "0"}},
	}
	payload, err := desc.MarshalSDP()
	if err != nil {
		log.Fatal(err)
	}
	pkt := sap.Packet{
		Type:      sap.Announce,
		MsgIDHash: sap.MsgIDHashOf(payload),
		Origin:    desc.Origin,
		Payload:   payload,
	}
	wire, err := pkt.Marshal(nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("SAP packet: %d bytes, msg-id-hash 0x%04x\n", len(wire), pkt.MsgIDHash)
	hexdump(wire)

	var decoded sap.Packet
	if err := decoded.Decode(wire); err != nil {
		log.Fatal(err)
	}
	back, err := session.ParseSDP(decoded.Payload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndecoded: type=%s origin=%s payload-type=%s\n",
		decoded.Type, decoded.Origin, decoded.EffectivePayloadType())
	fmt.Printf("session: %q group=%s ttl=%d media=%d stream(s)\n",
		back.Name, back.Group, back.TTL, len(back.Media))
}

func dumpLive(group string, port uint16) {
	g, err := netip.ParseAddr(group)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := transport.NewUDP(transport.UDPConfig{Group: g, Port: port})
	if err != nil {
		log.Fatalf("join %s:%d: %v (no multicast here? try the codec demo without -listen)", g, port, err)
	}
	defer tr.Close()
	log.Printf("listening on %s:%d", g, port)

	tr.Subscribe(func(m transport.Message) {
		// Everything below either aliases the receive buffer briefly or
		// retains only fresh strings (ParseSDP copies per line), so the
		// pooled buffer can go straight back to the read loop.
		defer m.Release()
		var pkt sap.Packet
		if err := pkt.Decode(m.Data); err != nil {
			log.Printf("%s: undecodable SAP packet: %v", m.From, err)
			return
		}
		desc, err := session.ParseSDP(pkt.Payload)
		if err != nil {
			log.Printf("%s: %s from %s (non-SDP payload)", m.From, pkt.Type, pkt.Origin)
			return
		}
		log.Printf("%s: %s %q group=%s ttl=%d", m.From, pkt.Type, desc.Name, desc.Group, desc.TTL)
	})

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
}

func hexdump(b []byte) {
	for off := 0; off < len(b); off += 16 {
		end := off + 16
		if end > len(b) {
			end = len(b)
		}
		fmt.Printf("%04x  ", off)
		for i := off; i < end; i++ {
			fmt.Printf("%02x ", b[i])
		}
		for i := end; i < off+16; i++ {
			fmt.Print("   ")
		}
		fmt.Print(" |")
		for i := off; i < end; i++ {
			c := b[i]
			if c < 32 || c > 126 {
				c = '.'
			}
			fmt.Printf("%c", c)
		}
		fmt.Println("|")
	}
}
