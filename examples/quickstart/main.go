// Quickstart: two session directory agents on an in-process bus. One
// creates a session (the directory allocates its multicast address and
// announces it); the other discovers it from the announcement.
package main

import (
	"fmt"
	"log"
	"net/netip"
	"time"

	"sessiondir"
	"sessiondir/internal/session"
	"sessiondir/internal/transport"
)

func main() {
	bus := transport.NewBus()

	alice, err := sessiondir.New(sessiondir.Config{
		Origin:    netip.MustParseAddr("10.0.0.1"),
		Transport: bus.Endpoint(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer alice.Close()

	bob, err := sessiondir.New(sessiondir.Config{
		Origin:    netip.MustParseAddr("10.0.0.2"),
		Transport: bus.Endpoint(),
		OnEvent: func(e sessiondir.Event) {
			if e.Kind == sessiondir.EventSessionLearned {
				fmt.Printf("bob learned: %q on %s (ttl %d)\n",
					e.Desc.Name, e.Desc.Group, e.Desc.TTL)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer bob.Close()

	// Alice creates a session; the directory picks the multicast address.
	desc, err := alice.CreateSession(&session.Description{
		Name: "Mbone Tools Seminar",
		Info: "weekly seminar over IP multicast",
		TTL:  127,
		Media: []session.Media{
			{Type: "audio", Port: 20000, Proto: "RTP/AVP", Format: "0"},
			{Type: "video", Port: 20002, Proto: "RTP/AVP", Format: "31"},
		},
		Start: time.Now(),
		Stop:  time.Now().Add(2 * time.Hour),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice announced %q on %s\n", desc.Name, desc.Group)

	fmt.Println("bob's session list:")
	for _, s := range bob.Sessions() {
		fmt.Printf("  %q group=%s ttl=%d origin=%s\n", s.Name, s.Group, s.TTL, s.Origin)
	}

	// Withdraw and confirm the listing empties.
	if err := alice.WithdrawSession(desc.Key()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after withdrawal bob knows %d sessions\n", len(bob.Sessions()))
}
