// Mbonesim: a scaled-down run of the paper's Figure-5 experiment with
// commentary. It builds the synthetic Mbone, then fills the address space
// with scoped sessions under each allocation algorithm until the first
// clash, showing why informed-random barely beats pure random once
// sessions are scoped, and why partitioning wins.
package main

import (
	"fmt"
	"log"

	"sessiondir/internal/allocator"
	"sessiondir/internal/mcast"
	"sessiondir/internal/sim"
	"sessiondir/internal/stats"
	"sessiondir/internal/topology"
)

func main() {
	g, err := topology.GenerateMbone(topology.MboneConfig{Nodes: 800}, stats.NewRNG(42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthetic Mbone: %d routers, %d links\n", g.NumNodes(), g.NumLinks())

	const space = 512
	const trials = 20
	algorithms := []allocator.Allocator{
		allocator.NewRandom(space),
		allocator.NewInformedRandom(space),
		allocator.NewStaticPartitioned(space, allocator.IPR3Separators()),
		allocator.NewStaticPartitioned(space, allocator.IPR7Separators()),
		allocator.NewAdaptive(space, allocator.AdaptiveConfig{GapFraction: 0.2, Name: "AIPR-1 (20% gap)"}),
	}

	fmt.Printf("\nworkload ds4 (mostly local sessions), space of %d addresses, %d trials:\n\n", space, trials)
	fmt.Printf("%-20s %s\n", "algorithm", "mean allocations before first clash")
	root := stats.NewRNG(7)
	for _, alg := range algorithms {
		var s stats.Summary
		for i := 0; i < trials; i++ {
			w := sim.NewWorld(g)
			res := sim.FillUntilClash(w, sim.FillConfig{Alloc: alg, Dist: mcast.DS4()}, root.Split())
			s.Add(float64(res.Allocations))
		}
		fmt.Printf("%-20s %8.1f  ±%.1f\n", alg.Name(), s.Mean(), s.StdErr())
	}

	fmt.Println(`
reading the numbers (paper, Figure 5):
  - R and IR land close together: scoping hides exactly the sessions an
    informed allocator would need to see, so listening barely helps;
  - IPR 3-band improves on IR but TTLs 15..63 share a band, so the
    Figure-3 boundary inconsistency still produces clashes;
  - IPR 7-band (perfect partitioning) and adaptive IPRMA allocate a
    number of addresses that scales with the space, not with its root.`)
}
