// Conference: reproduces the paper's clash scenario end to end. Two
// organisations are partitioned (a failed link), both schedule conferences
// and — with a tiny address space — allocate the same multicast group.
// When the partition heals, the three-phase protocol resolves the clash:
// the long-standing session defends its address, the recent one moves, and
// a third-party observer would defend either if its owner went silent.
package main

import (
	"fmt"
	"log"
	"net/netip"
	"sync"
	"time"

	"sessiondir"
	"sessiondir/internal/allocator"
	"sessiondir/internal/mcast"
	"sessiondir/internal/session"
	"sessiondir/internal/transport"
)

// virtualClock lets the example run the protocol's timers instantly.
type virtualClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *virtualClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *virtualClock) advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
	return c.t
}

func main() {
	bus := transport.NewBus()
	clock := &virtualClock{t: time.Date(1998, 9, 1, 9, 0, 0, 0, time.UTC)}

	newAgent := func(origin string, seed uint64) *sessiondir.Directory {
		const space = 4 // tiny on purpose: forces the clash
		d, err := sessiondir.New(sessiondir.Config{
			Origin:    netip.MustParseAddr(origin),
			Transport: bus.Endpoint(),
			Space:     mcast.SyntheticSpace(space),
			Allocator: allocator.NewAdaptive(space, allocator.AdaptiveConfig{GapFraction: 0.2}),
			Clock:     clock.now,
			Seed:      seed,
			OnEvent: func(e sessiondir.Event) {
				if e.Desc != nil {
					fmt.Printf("  [%s] %-16s %q -> %s\n", origin, e.Kind, e.Desc.Name, e.Desc.Group)
				}
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		return d
	}

	london := newAgent("10.1.0.1", 1)
	boston := newAgent("10.2.0.1", 2)
	defer london.Close()
	defer boston.Close()

	fmt.Println("== transatlantic link down: the sites cannot hear each other ==")
	bus.SetPolicy(func(int, int, mcast.TTL) bool { return false })

	mkDesc := func(name string) *session.Description {
		return &session.Description{
			Name:  name,
			TTL:   127,
			Media: []session.Media{{Type: "audio", Port: 20000, Proto: "RTP/AVP", Format: "0"}},
		}
	}
	lonDesc, err := london.CreateSession(mkDesc("London all-hands"))
	if err != nil {
		log.Fatal(err)
	}
	clock.advance(10 * time.Minute)
	bosDesc, err := boston.CreateSession(mkDesc("Boston planning call"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("london allocated %s, boston allocated %s — CLASH pending\n",
		lonDesc.Group, bosDesc.Group)

	fmt.Println("== link repaired: announcements flow again ==")
	bus.SetPolicy(nil)
	// Boston's back-off re-announcement fires ~5 s after its creation.
	boston.Step(clock.advance(6 * time.Second))
	// London heard Boston's clashing announcement. London's session is
	// long-standing, so it defended; Boston, the recent announcer, moved.
	london.Step(clock.advance(time.Second))

	fmt.Println("== final state ==")
	for _, d := range []*sessiondir.Directory{london, boston} {
		for _, s := range d.OwnSessions() {
			fmt.Printf("  %q on %s (version %d)\n", s.Name, s.Group, s.Version)
		}
	}
	lg := london.OwnSessions()[0].Group
	bg := boston.OwnSessions()[0].Group
	if lg == bg {
		log.Fatal("clash not resolved!")
	}
	fmt.Println("clash resolved: distinct groups, long-standing session kept its address")
}
