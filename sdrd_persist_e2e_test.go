package sessiondir_test

// End-to-end crash-safety tests of the sdrd daemon: a SIGKILLed daemon
// must come back up with the sessions its periodic atomic checkpoints
// captured, and a corrupt cache file must degrade to a cold start, never a
// crash.

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildSdrd compiles the daemon once into the test's temp dir so the kill
// test can signal the real process (with `go run`, signals hit the
// toolchain wrapper, not sdrd).
func buildSdrd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "sdrd")
	out, err := exec.Command("go", "build", "-o", bin, "./cmd/sdrd").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func TestSdrdKillRestartPersistence(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the toolchain")
	}
	bin := buildSdrd(t)
	ports := freePorts(t, 2)
	addrA := fmt.Sprintf("127.0.0.1:%d", ports[0])
	addrB := fmt.Sprintf("127.0.0.1:%d", ports[1])
	cache := filepath.Join(t.TempDir(), "sd.cache")

	// A announces a session; B caches it with fast periodic checkpoints.
	announcer := exec.Command(bin,
		"-origin", "127.0.0.1", "-listen", addrA, "-peers", addrB,
		"-announce", "durable-session", "-ttl", "63", "-for", "60s")
	if err := announcer.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = announcer.Process.Kill()
		_ = announcer.Wait()
	})

	var listenerOut strings.Builder
	listener := exec.Command(bin,
		"-origin", "127.0.0.2", "-listen", addrB, "-peers", addrA,
		"-cache", cache, "-checkpoint", "200ms", "-for", "60s")
	listener.Stdout = &listenerOut
	listener.Stderr = &listenerOut
	if err := listener.Start(); err != nil {
		t.Fatal(err)
	}

	// Wait for a checkpoint that actually contains the learned session.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if b, err := os.ReadFile(cache); err == nil && strings.Contains(string(b), "durable-session") {
			break
		}
		if time.Now().After(deadline) {
			_ = listener.Process.Kill()
			_ = listener.Wait()
			t.Fatalf("cache never checkpointed the session; listener output:\n%s", listenerOut.String())
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Unclean exit: SIGKILL skips every deferred save. Only the atomic
	// checkpoints can have left a valid file.
	if err := listener.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = listener.Wait() // exits with the kill signal; that is the point

	// Restart on the same cache, with the announcer also gone, so the
	// cache is the only possible source of the session.
	_ = announcer.Process.Kill()
	_ = announcer.Wait()

	var out strings.Builder
	restarted := exec.Command(bin,
		"-origin", "127.0.0.2", "-listen", addrB, "-peers", addrA,
		"-cache", cache, "-for", "12s")
	restarted.Stdout = &out
	restarted.Stderr = &out
	if err := restarted.Run(); err != nil {
		t.Fatalf("restarted sdrd failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "loaded 1 cached sessions") {
		t.Fatalf("restart did not load the checkpointed cache:\n%s", out.String())
	}
	// The periodic session listing proves the restored entry is live in
	// the directory, not just counted at load time.
	if !strings.Contains(out.String(), "durable-session") {
		t.Fatalf("restored session not in the directory listing:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "sdrd exiting") {
		t.Fatalf("restarted daemon did not exit cleanly:\n%s", out.String())
	}
}

func TestSdrdCorruptCacheColdStart(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the toolchain")
	}
	bin := buildSdrd(t)
	ports := freePorts(t, 1)
	cache := filepath.Join(t.TempDir(), "sd.cache")
	// A truncated header torn mid-entry: Load must error, sdrd must log it
	// and run cold rather than die.
	if err := os.WriteFile(cache, []byte("sdcache v1\nentry 100 200 4096\nchopped"), 0o644); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	cmd := exec.Command(bin,
		"-origin", "127.0.0.1",
		"-listen", fmt.Sprintf("127.0.0.1:%d", ports[0]),
		"-peers", "127.0.0.1:9",
		"-cache", cache, "-for", "2s")
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		t.Fatalf("sdrd died on a corrupt cache: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "cache load:") || !strings.Contains(out.String(), "starting cold") {
		t.Fatalf("corrupt cache not reported:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "sdrd exiting") {
		t.Fatalf("daemon did not exit cleanly:\n%s", out.String())
	}
	// The clean exit rewrote the cache atomically; it must be valid now.
	b, err := os.ReadFile(cache)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(b), "sdcache v1") || strings.Contains(string(b), "chopped") {
		t.Fatalf("exit did not replace the corrupt cache: %q", b)
	}
}
