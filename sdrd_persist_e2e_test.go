package sessiondir_test

// End-to-end crash-safety tests of the sdrd daemon: a SIGKILLed daemon
// must come back up with the sessions its periodic atomic checkpoints
// captured, and a corrupt cache file must degrade to a cold start, never a
// crash.

import (
	"fmt"
	"net/netip"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sessiondir"
	"sessiondir/internal/mcast"
	"sessiondir/internal/storage"
	"sessiondir/internal/transport"
)

// countCachedOffline loads a checkpoint the same way a restarted daemon
// would — framed snapshot plus journal, torn tail dropped — and reports
// how many sessions it recovers.
func countCachedOffline(t *testing.T, path string) int {
	t.Helper()
	bus := transport.NewBus()
	dir, err := sessiondir.New(sessiondir.Config{
		Origin:    netip.MustParseAddr("10.200.0.9"),
		Transport: bus.Endpoint(),
		Space:     mcast.SyntheticSpace(256),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dir.Close()
	n, err := dir.LoadCacheFile(path)
	if err != nil {
		t.Fatalf("loading checkpoint %s: %v", path, err)
	}
	return n
}

// buildSdrd compiles the daemon once into the test's temp dir so the kill
// test can signal the real process (with `go run`, signals hit the
// toolchain wrapper, not sdrd).
func buildSdrd(t *testing.T) string {
	t.Helper()
	return buildSdrdWith(t)
}

// buildSdrdWith compiles the daemon with extra build flags (e.g. -race,
// so an e2e run exercises the journal path under the race detector).
func buildSdrdWith(t *testing.T, buildFlags ...string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "sdrd")
	args := append([]string{"build"}, buildFlags...)
	args = append(args, "-o", bin, "./cmd/sdrd")
	out, err := exec.Command("go", args...).CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func TestSdrdKillRestartPersistence(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the toolchain")
	}
	bin := buildSdrd(t)
	ports := freePorts(t, 2)
	addrA := fmt.Sprintf("127.0.0.1:%d", ports[0])
	addrB := fmt.Sprintf("127.0.0.1:%d", ports[1])
	cache := filepath.Join(t.TempDir(), "sd.cache")

	// A announces a session; B caches it with fast periodic checkpoints.
	announcer := exec.Command(bin,
		"-origin", "127.0.0.1", "-listen", addrA, "-peers", addrB,
		"-announce", "durable-session", "-ttl", "63", "-for", "60s")
	if err := announcer.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = announcer.Process.Kill()
		_ = announcer.Wait()
	})

	var listenerOut strings.Builder
	listener := exec.Command(bin,
		"-origin", "127.0.0.2", "-listen", addrB, "-peers", addrA,
		"-cache", cache, "-checkpoint", "200ms", "-for", "60s")
	listener.Stdout = &listenerOut
	listener.Stderr = &listenerOut
	if err := listener.Start(); err != nil {
		t.Fatal(err)
	}

	// Wait for a checkpoint that actually contains the learned session.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if b, err := os.ReadFile(cache); err == nil && strings.Contains(string(b), "durable-session") {
			break
		}
		if time.Now().After(deadline) {
			_ = listener.Process.Kill()
			_ = listener.Wait()
			t.Fatalf("cache never checkpointed the session; listener output:\n%s", listenerOut.String())
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Unclean exit: SIGKILL skips every deferred save. Only the atomic
	// checkpoints can have left a valid file.
	if err := listener.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = listener.Wait() // exits with the kill signal; that is the point

	// Restart on the same cache, with the announcer also gone, so the
	// cache is the only possible source of the session.
	_ = announcer.Process.Kill()
	_ = announcer.Wait()

	var out strings.Builder
	restarted := exec.Command(bin,
		"-origin", "127.0.0.2", "-listen", addrB, "-peers", addrA,
		"-cache", cache, "-for", "12s")
	restarted.Stdout = &out
	restarted.Stderr = &out
	if err := restarted.Run(); err != nil {
		t.Fatalf("restarted sdrd failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "loaded 1 cached sessions") {
		t.Fatalf("restart did not load the checkpointed cache:\n%s", out.String())
	}
	// The periodic session listing proves the restored entry is live in
	// the directory, not just counted at load time.
	if !strings.Contains(out.String(), "durable-session") {
		t.Fatalf("restored session not in the directory listing:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "sdrd exiting") {
		t.Fatalf("restarted daemon did not exit cleanly:\n%s", out.String())
	}
}

// TestSdrdKillMidJournalAppendRecoversDurablePrefix SIGKILLs a daemon
// while learned-session deltas are streaming into the journal (long
// checkpoint interval, so the journal is the only durability carrier)
// and asserts recovery returns exactly the durable record prefix: an
// offline reader and a restarted daemon must agree on the session
// count, and a torn final record is dropped silently, never quarantined.
func TestSdrdKillMidJournalAppendRecoversDurablePrefix(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the toolchain")
	}
	bin := buildSdrdWith(t, "-race")
	ports := freePorts(t, 4)
	listenAddr := fmt.Sprintf("127.0.0.1:%d", ports[0])
	cache := filepath.Join(t.TempDir(), "sd.cache")

	// Three announcers so the journal receives several learn deltas; the
	// kill can land between any two of them (or inside one).
	for i := 0; i < 3; i++ {
		a := exec.Command(bin,
			"-origin", fmt.Sprintf("127.0.0.%d", 10+i),
			"-listen", fmt.Sprintf("127.0.0.1:%d", ports[1+i]),
			"-peers", listenAddr,
			"-announce", fmt.Sprintf("journal-session-%d", i),
			"-ttl", "63", "-for", "60s")
		if err := a.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			_ = a.Process.Kill()
			_ = a.Wait()
		})
	}

	var listenerOut strings.Builder
	listener := exec.Command(bin,
		"-origin", "127.0.0.2", "-listen", listenAddr,
		"-peers", fmt.Sprintf("127.0.0.1:%d", ports[1]),
		"-cache", cache, "-checkpoint", "1h", "-for", "60s")
	listener.Stdout = &listenerOut
	listener.Stderr = &listenerOut
	if err := listener.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = listener.Process.Kill()
		_ = listener.Wait()
	})

	// Kill as soon as at least one learn delta has reached the journal
	// file — the closest an external test can get to "mid-append".
	journal := cache + ".journal"
	deadline := time.Now().Add(30 * time.Second)
	for {
		if b, err := os.ReadFile(journal); err == nil && strings.Contains(string(b), "journal-session") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("journal never saw a session delta; listener output:\n%s", listenerOut.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := listener.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = listener.Wait()

	// The durable prefix, as an offline reader sees it.
	n := countCachedOffline(t, cache)
	if n > 3 {
		t.Fatalf("recovered %d sessions from a 3-session run", n)
	}

	// A restarted daemon must recover the identical prefix (both readers
	// replay the same snapshot + journal bytes and drop the same torn
	// tail). No file may have been quarantined: a torn tail is normal.
	var out strings.Builder
	restarted := exec.Command(bin,
		"-origin", "127.0.0.2", "-listen", listenAddr,
		"-peers", fmt.Sprintf("127.0.0.1:%d", ports[1]),
		"-cache", cache, "-for", "2s")
	restarted.Stdout = &out
	restarted.Stderr = &out
	if err := restarted.Run(); err != nil {
		t.Fatalf("restarted sdrd failed: %v\n%s", err, out.String())
	}
	if n > 0 {
		want := fmt.Sprintf("loaded %d cached sessions", n)
		if !strings.Contains(out.String(), want) {
			t.Fatalf("restart did not recover the durable prefix (want %q):\n%s", want, out.String())
		}
	} else if strings.Contains(out.String(), "cached sessions") {
		t.Fatalf("restart loaded sessions the offline reader could not see:\n%s", out.String())
	}
	if strings.Contains(out.String(), "quarantined") {
		t.Fatalf("torn tail was treated as corruption:\n%s", out.String())
	}
	entries, err := filepath.Glob(cache + ".corrupt-*")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) > 0 {
		t.Fatalf("torn tail quarantined as %v", entries)
	}
}

func TestSdrdCorruptCacheColdStart(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the toolchain")
	}
	bin := buildSdrd(t)
	ports := freePorts(t, 1)
	cache := filepath.Join(t.TempDir(), "sd.cache")
	// A truncated header torn mid-entry: Load must error, sdrd must log it
	// and run cold rather than die.
	if err := os.WriteFile(cache, []byte("sdcache v1\nentry 100 200 4096\nchopped"), 0o644); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	cmd := exec.Command(bin,
		"-origin", "127.0.0.1",
		"-listen", fmt.Sprintf("127.0.0.1:%d", ports[0]),
		"-peers", "127.0.0.1:9",
		"-cache", cache, "-for", "2s")
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		t.Fatalf("sdrd died on a corrupt cache: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "cache load:") || !strings.Contains(out.String(), "starting cold") {
		t.Fatalf("corrupt cache not reported:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "sdrd exiting") {
		t.Fatalf("daemon did not exit cleanly:\n%s", out.String())
	}
	// The clean exit rewrote the cache atomically in the framed
	// checkpoint format; it must be valid now.
	b, err := os.ReadFile(cache)
	if err != nil {
		t.Fatal(err)
	}
	if !storage.HasMagic(b) || strings.Contains(string(b), "chopped") {
		t.Fatalf("exit did not replace the corrupt cache: %q", b)
	}
	// The corrupt original was quarantined, not destroyed: an operator
	// can still inspect what the disk handed us.
	q, err := os.ReadFile(cache + ".corrupt-1")
	if err != nil {
		t.Fatalf("corrupt cache was not quarantined: %v", err)
	}
	if !strings.Contains(string(q), "chopped") {
		t.Fatalf("quarantined file lost the original bytes: %q", q)
	}
}
