package sessiondir_test

// End-to-end test of sdrd's -http-debug surface: a daemon started with it
// must serve Prometheus-text metrics (including the directory, admission
// and UDP-transport counter families), the event-trace dump, and expvar,
// scrapeable with a plain HTTP GET while the daemon runs.

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os/exec"
	"strings"
	"testing"
	"time"
)

// freeTCPPort reserves a TCP port by binding and releasing it.
func freeTCPPort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := l.Addr().(*net.TCPAddr).Port
	_ = l.Close()
	return port
}

func httpGet(url string) (string, error) {
	c := http.Client{Timeout: 2 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	return string(body), err
}

func TestSdrdHTTPDebugScrape(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the toolchain")
	}
	udpPorts := freePorts(t, 2)
	debugAddr := fmt.Sprintf("127.0.0.1:%d", freeTCPPort(t))

	var out strings.Builder
	cmd := exec.Command("go", "run", "./cmd/sdrd",
		"-origin", "127.0.0.1",
		"-listen", fmt.Sprintf("127.0.0.1:%d", udpPorts[0]),
		"-peers", fmt.Sprintf("127.0.0.1:%d", udpPorts[1]),
		"-announce", "scrape-me",
		"-ttl", "63",
		"-seed", "7",
		"-http-debug", debugAddr,
		"-for", "12s", // long enough to compile+start+scrape; Wait blocks until the child exits
	)
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	}()

	// Poll /metrics until the daemon is up and has announced.
	var metrics string
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("never scraped a useful /metrics; last:\n%s\ndaemon log:\n%s", metrics, out.String())
		}
		body, err := httpGet("http://" + debugAddr + "/metrics")
		if err == nil && strings.Contains(body, "dir_announcements_sent_total") {
			metrics = body
			break
		}
		time.Sleep(200 * time.Millisecond)
	}

	// The counter families the acceptance criteria name: announces,
	// clashes, sheds, transport(-fault) counters — present even at zero.
	for _, family := range []string{
		"dir_announcements_sent_total",
		"dir_clash_moves_total",
		"dir_clash_defenses_own_total",
		"dir_admission_shed_total",
		"udp_received_total",
		"udp_read_errors_total",
		"dir_packet_size_bytes_count",
		"allocator_", // per-allocator pick counters
	} {
		if !strings.Contains(metrics, family) {
			t.Errorf("/metrics missing %q:\n%s", family, metrics)
		}
	}
	// The daemon announced at startup, so the counter must be nonzero and
	// the exposition must carry HELP/TYPE headers.
	if !strings.Contains(metrics, "# TYPE dir_announcements_sent_total counter") {
		t.Errorf("missing TYPE header:\n%s", metrics)
	}
	if strings.Contains(metrics, "dir_announcements_sent_total 0\n") {
		t.Errorf("announcements counter still zero after announce:\n%s", metrics)
	}

	trace, err := httpGet("http://" + debugAddr + "/trace")
	if err != nil {
		t.Fatalf("/trace: %v", err)
	}
	if !strings.Contains(trace, "# trace:") || !strings.Contains(trace, "allocate") {
		t.Errorf("/trace missing header or allocate event:\n%s", trace)
	}

	vars, err := httpGet("http://" + debugAddr + "/debug/vars")
	if err != nil {
		t.Fatalf("/debug/vars: %v", err)
	}
	if !strings.Contains(vars, "memstats") {
		t.Errorf("/debug/vars missing memstats:\n%s", vars)
	}
}
