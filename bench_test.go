package sessiondir_test

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benches for the design choices DESIGN.md calls out. Each bench
// regenerates its figure at a reduced scale per iteration; run
//
//	go test -bench=. -benchmem
//
// for the whole suite, or `go run ./cmd/mcbench -experiment <id> -full`
// for paper-scale parameter ranges.

import (
	"io"
	"testing"

	"sessiondir/internal/allocator"
	"sessiondir/internal/analytic"
	"sessiondir/internal/clash"
	"sessiondir/internal/experiments"
	"sessiondir/internal/mcast"
	"sessiondir/internal/sim"
	"sessiondir/internal/stats"
	"sessiondir/internal/topology"
)

// benchScale keeps per-iteration cost low while exercising the full path.
func benchScale() experiments.Scale {
	return experiments.Scale{
		Name:          "bench",
		MboneNodes:    250,
		HopSources:    20,
		Fig5Spaces:    []uint32{64, 128},
		Fig5Trials:    3,
		Fig5Dists:     []mcast.TTLDistribution{mcast.DS4()},
		Fig12Spaces:   []uint32{64},
		Fig12Reps:     3,
		RespReceivers: []int{200, 800, 3200},
		RespD2Millis:  []float64{800, 3200, 12800},
		RRGroupSizes:  []int{200},
		RRD2Millis:    []float64{800, 51200},
		RRTrials:      1,
		Seed:          1998,
	}
}

func benchRunner(b *testing.B, id string) {
	b.Helper()
	r, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	s := benchScale()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Run(io.Discard, s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig01PartitionPDF(b *testing.B)       { benchRunner(b, "fig1") }
func BenchmarkFig04Birthday(b *testing.B)           { benchRunner(b, "fig4") }
func BenchmarkFig05FillUntilClash(b *testing.B)     { benchRunner(b, "fig5") }
func BenchmarkFig06Equation1(b *testing.B)          { benchRunner(b, "fig6") }
func BenchmarkFig08DAIPRLayout(b *testing.B)        { benchRunner(b, "fig8") }
func BenchmarkFig10HopHistogram(b *testing.B)       { benchRunner(b, "fig10") }
func BenchmarkFig11PartitionMap(b *testing.B)       { benchRunner(b, "fig11") }
func BenchmarkFig12SteadyState(b *testing.B)        { benchRunner(b, "fig12") }
func BenchmarkFig13UpperBound(b *testing.B)         { benchRunner(b, "fig13") }
func BenchmarkFig14UniformResponders(b *testing.B)  { benchRunner(b, "fig14") }
func BenchmarkFig15ReqRespSim(b *testing.B)         { benchRunner(b, "fig15") }
func BenchmarkFig16FirstResponseDelay(b *testing.B) { benchRunner(b, "fig16") }
func BenchmarkFig18ExpResponders(b *testing.B)      { benchRunner(b, "fig18") }
func BenchmarkFig19DelayVsResponses(b *testing.B)   { benchRunner(b, "fig19") }
func BenchmarkTTLTable(b *testing.B)                { benchRunner(b, "ttltable") }

// --- Ablation benches (design choices from DESIGN.md §5) ---

func benchSteadyState(b *testing.B, mk func(size uint32) allocator.Allocator) {
	b.Helper()
	g, err := topology.GenerateMbone(topology.MboneConfig{Nodes: 250}, stats.NewRNG(3))
	if err != nil {
		b.Fatal(err)
	}
	cache := topology.NewReachCache(g)
	rng := stats.NewRNG(17)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := sim.RunSteadyStateOnce(g, cache, sim.SteadyStateConfig{
			Alloc:    mk(128),
			Dist:     mcast.DS4(),
			Sessions: 40,
		}, rng.Split())
		if res.Exhausted {
			b.Fatal("space exhausted at bench scale")
		}
	}
}

func BenchmarkAblationGapFraction20(b *testing.B) {
	benchSteadyState(b, func(size uint32) allocator.Allocator {
		return allocator.NewAdaptive(size, allocator.AdaptiveConfig{GapFraction: 0.2})
	})
}

func BenchmarkAblationGapFraction60(b *testing.B) {
	benchSteadyState(b, func(size uint32) allocator.Allocator {
		return allocator.NewAdaptive(size, allocator.AdaptiveConfig{GapFraction: 0.6})
	})
}

func BenchmarkAblationOccupancy50(b *testing.B) {
	benchSteadyState(b, func(size uint32) allocator.Allocator {
		return allocator.NewAdaptive(size, allocator.AdaptiveConfig{GapFraction: 0.2, TargetOccupancy: 0.5})
	})
}

func BenchmarkAblationOccupancy99(b *testing.B) {
	benchSteadyState(b, func(size uint32) allocator.Allocator {
		return allocator.NewAdaptive(size, allocator.AdaptiveConfig{GapFraction: 0.2, TargetOccupancy: 0.99})
	})
}

func BenchmarkAblationMargin1(b *testing.B) {
	benchSteadyState(b, func(size uint32) allocator.Allocator {
		return allocator.NewAdaptive(size, allocator.AdaptiveConfig{GapFraction: 0.2, Margin: 1})
	})
}

func BenchmarkAblationMargin4(b *testing.B) {
	benchSteadyState(b, func(size uint32) allocator.Allocator {
		return allocator.NewAdaptive(size, allocator.AdaptiveConfig{GapFraction: 0.2, Margin: 4})
	})
}

func BenchmarkAblationBackoffPacking(b *testing.B) {
	// Announcement schedule → discovery delay → invisible fraction →
	// Equation-1 packing. Pure computation, the knob the paper's §4 turns.
	for i := 0; i < b.N; i++ {
		delay := analytic.MeanDiscoveryDelay(0.02, 0.2, 5)
		i1 := analytic.InvisibleFraction(delay, 4*3600)
		_ = analytic.AllocationsAtHalf(8192, i1)
	}
}

// --- Core operation micro-benches ---

func BenchmarkAllocateAdaptive(b *testing.B) {
	a := allocator.NewAdaptive(4096, allocator.AdaptiveConfig{GapFraction: 0.2})
	rng := stats.NewRNG(5)
	d := mcast.DS4()
	var view []allocator.SessionInfo
	for i := 0; i < 500; i++ {
		view = append(view, allocator.SessionInfo{
			Addr: mcast.Addr(rng.IntN(4096)),
			TTL:  d.Sample(rng.IntN),
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Allocate(view, 127, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAllocateInformedRandom(b *testing.B) {
	a := allocator.NewInformedRandom(4096)
	rng := stats.NewRNG(5)
	var view []allocator.SessionInfo
	for i := 0; i < 500; i++ {
		view = append(view, allocator.SessionInfo{Addr: mcast.Addr(rng.IntN(4096)), TTL: 63})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Allocate(view, 63, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReachComputation(b *testing.B) {
	g, err := topology.GenerateMbone(topology.MboneConfig{Nodes: 1864}, stats.NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	tree := topology.NewSPTree(g, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		topology.Reach(g, tree, 127)
	}
}

func BenchmarkExpDelaySample(b *testing.B) {
	d := clash.NewExponentialDelay(0, 3200, 200)
	rng := stats.NewRNG(9)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = d.Sample(rng)
	}
}
