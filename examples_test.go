package sessiondir_test

// Smoke tests: every example must build and run to completion. They use
// `go run` so the examples are exercised exactly as the README shows them.

import (
	"os/exec"
	"strings"
	"testing"
	"time"
)

func runExample(t *testing.T, path string, wantOutput ...string) {
	t.Helper()
	if testing.Short() {
		t.Skip("examples run the toolchain; skipped in -short")
	}
	done := make(chan struct{})
	cmd := exec.Command("go", "run", path)
	cmd.Dir = "."
	var out []byte
	var err error
	go func() {
		out, err = cmd.CombinedOutput()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(3 * time.Minute):
		_ = cmd.Process.Kill()
		t.Fatalf("%s timed out", path)
	}
	if err != nil {
		t.Fatalf("%s failed: %v\n%s", path, err, out)
	}
	for _, want := range wantOutput {
		if !strings.Contains(string(out), want) {
			t.Fatalf("%s output missing %q:\n%s", path, want, out)
		}
	}
}

func TestExampleQuickstart(t *testing.T) {
	runExample(t, "./examples/quickstart",
		"bob learned",
		"after withdrawal bob knows 0 sessions")
}

func TestExampleConference(t *testing.T) {
	runExample(t, "./examples/conference",
		"CLASH pending",
		"clash resolved: distinct groups, long-standing session kept its address")
}

func TestExampleMbonesim(t *testing.T) {
	runExample(t, "./examples/mbonesim",
		"IPR 7-band",
		"reading the numbers")
}

func TestExampleSapdump(t *testing.T) {
	runExample(t, "./examples/sapdump",
		"application/sdp",
		"decoded: type=announce")
}

func TestExampleHierarchy(t *testing.T) {
	runExample(t, "./examples/hierarchy",
		"collision resolved",
		"invariant holds")
}
